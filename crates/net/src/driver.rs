//! Spawn and drive a cluster of local `lt-node` daemons.
//!
//! The driver is the control plane of a multi-process run: it launches
//! one daemon per peer, wires them into a full mesh via `Connect`, and
//! then drives activations over the control connections. Two modes:
//!
//! * [`Cluster::lockstep`] — one activation at a time, waiting for full
//!   convergence (equal replica lengths, no orphans, nothing missing)
//!   after each publish. Under lockstep, every replica inserts every
//!   transaction in publish order, so the run is byte-comparable with
//!   the in-process executors on the same schedule.
//! * [`Cluster::throughput`] — sustained publish traffic on a scripted
//!   slot-striped schedule, one driver thread per daemon, reporting
//!   wall-clock throughput plus the daemons' socket-level frame/byte
//!   counters and RTT histograms.
//!
//! With [`ClusterOptions::chaos`] set, the driver interposes one
//! [`ChaosProxies`] TCP proxy per daemon pair (data-plane links cross
//! the fault injector; control connections stay direct) and a
//! [`Supervisor`] executes the plan's kill schedule: SIGKILL on
//! schedule, respawn on the *same* listen address (surviving dialers
//! keep redialing it, so the mesh heals without re-plumbing), restoring
//! from checkpoint when the plan says so.

use crate::chaos::{ChaosPlan, ChaosProxies, KillEvent};
use crate::frame::{read_frame, write_frame, StatusReport, WireMsg, CONTROL_PEER};
use crate::preset::Preset;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use tangle_gossip::{Recovery, TxMessage};

/// One synchronous request/response control connection to a daemon.
pub struct ControlConn {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl ControlConn {
    /// Connect to a daemon's control plane and identify as the harness.
    pub fn connect(addr: &str, genesis_id: u64) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut conn = Self {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
        };
        conn.send(&WireMsg::Hello {
            peer: CONTROL_PEER,
            genesis: genesis_id,
        })?;
        Ok(conn)
    }

    /// Fire-and-forget (used for `Connect` and `Shutdown`).
    pub fn send(&mut self, msg: &WireMsg) -> io::Result<()> {
        write_frame(&mut self.writer, msg)?;
        self.writer.flush()
    }

    /// Send a request and block for the daemon's next reply frame.
    pub fn request(&mut self, msg: &WireMsg) -> io::Result<WireMsg> {
        self.send(msg)?;
        match read_frame(&mut self.reader)? {
            Some((reply, _)) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the control connection",
            )),
        }
    }

    /// Round-trip a ping; returns the measured RTT.
    pub fn ping(&mut self, nonce: u64) -> io::Result<Duration> {
        let t0 = Instant::now();
        match self.request(&WireMsg::Ping { nonce, sent_us: 0 })? {
            WireMsg::Pong { nonce: n, .. } if n == nonce => Ok(t0.elapsed()),
            other => Err(bad_reply("Pong", &other)),
        }
    }
}

fn bad_reply(expected: &str, got: &WireMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected {expected} reply, got {got:?}"),
    )
}

/// Locate the `lt-node` binary: `$LT_NODE_BIN` if set, else a sibling of
/// the current executable (the cargo target directory).
pub fn default_node_bin() -> PathBuf {
    if let Ok(p) = std::env::var("LT_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("lt-node"));
    p.pop();
    // integration tests live in target/debug/deps; the binary one up
    for candidate in [
        p.join("lt-node"),
        p.parent().map(|d| d.join("lt-node")).unwrap_or_default(),
    ] {
        if candidate.is_file() {
            return candidate;
        }
    }
    PathBuf::from("lt-node")
}

/// Summary of a lockstep run.
#[derive(Clone, Copy, Debug)]
pub struct LockstepReport {
    /// Activations driven.
    pub activations: usize,
    /// Activations that published.
    pub published: u64,
    /// Final replica length on every daemon (genesis included).
    pub final_len: usize,
}

/// Summary of a throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Activations driven (all daemons).
    pub activations: usize,
    /// Activations that published.
    pub published: u64,
    /// Driving wall-clock.
    pub wall: Duration,
    /// Extra wall-clock spent waiting for replica convergence afterwards.
    pub drain: Duration,
    /// Final replica length on every daemon.
    pub final_len: usize,
    /// Sum of `net.frames_sent` over all daemons.
    pub frames_sent: u64,
    /// Sum of `net.bytes_sent` over all daemons.
    pub bytes_sent: u64,
    /// Sum of `net.frames_recv` over all daemons.
    pub frames_recv: u64,
    /// Sum of `net.bytes_recv` over all daemons.
    pub bytes_recv: u64,
    /// Pooled `net.rtt_us` histogram totals `(count, sum_us)`.
    pub rtt: (u64, u64),
    /// Sum of `net.dropped` (queue overflow) over all daemons.
    pub dropped: u64,
    /// Sum of `net.rejected` (peer down) over all daemons.
    pub rejected: u64,
}

impl ThroughputReport {
    /// Activations per second of driving wall-clock.
    pub fn activations_per_sec(&self) -> f64 {
        self.activations as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Mean measured peer-to-peer RTT, if any pings flowed.
    pub fn mean_rtt_us(&self) -> Option<f64> {
        (self.rtt.0 > 0).then(|| self.rtt.1 as f64 / self.rtt.0 as f64)
    }
}

/// Everything [`Cluster::spawn_with`] needs beyond the binary path.
#[derive(Clone, Debug)]
pub struct ClusterOptions {
    /// Daemon count (= preset population).
    pub nodes: usize,
    /// Shared experiment seed.
    pub seed: u64,
    /// Daemon liveness-ping interval (0 = off).
    pub ping_interval_ms: u64,
    /// Per-connection send-queue bound (None = daemon default).
    pub queue_cap: Option<usize>,
    /// Directory for per-daemon checkpoint files (None = no
    /// checkpoints, so kills recover empty).
    pub checkpoint_dir: Option<PathBuf>,
    /// Daemon checkpoint cadence, ms.
    pub checkpoint_every_ms: u64,
    /// Fault schedule; when set, data-plane links run through
    /// [`ChaosProxies`] and a [`Supervisor`] can execute the kills.
    pub chaos: Option<ChaosPlan>,
}

impl ClusterOptions {
    /// A healthy-network cluster of `nodes` daemons at `seed`.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            seed,
            ping_interval_ms: 0,
            queue_cap: None,
            checkpoint_dir: None,
            checkpoint_every_ms: 250,
            chaos: None,
        }
    }
}

/// A running cluster of `lt-node` daemons plus control connections.
/// Slots of killed daemons hold `None` until the supervisor respawns
/// them.
pub struct Cluster {
    bin: PathBuf,
    opts: ClusterOptions,
    genesis_id: u64,
    procs: Vec<Option<Child>>,
    controls: Vec<Option<ControlConn>>,
    /// Real (post-bind) listen address per daemon; a respawn reuses it.
    addrs: Vec<String>,
    preset: Preset,
    /// The chaos clock's zero point.
    epoch: Instant,
    proxies: Option<ChaosProxies>,
}

impl Cluster {
    /// Spawn `nodes` daemons of the `(nodes, seed)` preset from `bin`,
    /// wire them into a full mesh, and wait until every daemon reports
    /// all its data connections up.
    pub fn spawn(bin: &Path, nodes: usize, seed: u64, ping_interval_ms: u64) -> io::Result<Self> {
        let mut opts = ClusterOptions::new(nodes, seed);
        opts.ping_interval_ms = ping_interval_ms;
        Self::spawn_with(bin, opts)
    }

    /// [`Cluster::spawn`] with full options: checkpoints, queue bounds,
    /// and an armed chaos plan.
    pub fn spawn_with(bin: &Path, opts: ClusterOptions) -> io::Result<Self> {
        if let Some(plan) = &opts.chaos {
            plan.validate(opts.nodes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        let preset = Preset {
            nodes: opts.nodes,
            seed: opts.seed,
        };
        let genesis_id = preset.genesis().content_id().0;
        let mut cluster = Self {
            bin: bin.to_path_buf(),
            genesis_id,
            procs: Vec::with_capacity(opts.nodes),
            controls: Vec::with_capacity(opts.nodes),
            addrs: Vec::with_capacity(opts.nodes),
            preset,
            epoch: Instant::now(),
            proxies: None,
            opts,
        };
        for id in 0..cluster.opts.nodes {
            let (child, addr) = cluster.spawn_daemon(id, "127.0.0.1:0", false)?;
            cluster.procs.push(Some(child));
            cluster.addrs.push(addr);
        }
        // the chaos clock starts once every daemon is listening
        cluster.epoch = Instant::now();
        if let Some(plan) = cluster.opts.chaos.clone() {
            cluster.proxies = Some(ChaosProxies::spawn(&plan, cluster.epoch, &cluster.addrs)?);
        }
        for addr in &cluster.addrs {
            cluster
                .controls
                .push(Some(ControlConn::connect(addr, genesis_id)?));
        }
        for id in 0..cluster.opts.nodes {
            let peers = cluster.address_book(id);
            cluster.control(id)?.send(&WireMsg::Connect { peers })?;
        }
        cluster.wait_mesh(Duration::from_secs(10))?;
        Ok(cluster)
    }

    /// Launch one `lt-node` process and parse its `LISTEN` line.
    fn spawn_daemon(&self, id: usize, listen: &str, restore: bool) -> io::Result<(Child, String)> {
        let mut cmd = Command::new(&self.bin);
        cmd.args([
            "--id",
            &id.to_string(),
            "--nodes",
            &self.opts.nodes.to_string(),
            "--seed",
            &self.opts.seed.to_string(),
            "--listen",
            listen,
            "--ping-ms",
            &self.opts.ping_interval_ms.to_string(),
        ]);
        if let Some(cap) = self.opts.queue_cap {
            cmd.args(["--queue-cap", &cap.to_string()]);
        }
        if let Some(dir) = &self.opts.checkpoint_dir {
            let path = dir.join(format!("daemon-{id}.ltnd"));
            cmd.args(["--checkpoint".as_ref(), path.as_os_str()]);
            cmd.args([
                "--checkpoint-every-ms",
                &self.opts.checkpoint_every_ms.to_string(),
            ]);
        }
        if restore {
            cmd.arg("--restore");
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout piped");
        match read_listen_line(stdout) {
            Ok(addr) => Ok((child, addr)),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// The address book daemon `dialer` should use: peers it will dial
    /// (higher ids) routed through the chaos proxies when armed.
    fn address_book(&self, dialer: usize) -> Vec<(u64, String)> {
        (0..self.opts.nodes)
            .map(|j| {
                let addr = self
                    .proxies
                    .as_ref()
                    .and_then(|p| p.addr_for(dialer, j))
                    .unwrap_or(&self.addrs[j]);
                (j as u64, addr.clone())
            })
            .collect()
    }

    /// Milliseconds since the chaos epoch (daemons all listening).
    pub fn elapsed_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// The preset the cluster runs.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Daemon count (including currently killed ones).
    pub fn len(&self) -> usize {
        self.controls.len()
    }

    /// Clusters are never empty.
    pub fn is_empty(&self) -> bool {
        self.controls.is_empty()
    }

    /// The control connection to daemon `i`, or an error if it is
    /// currently killed.
    fn control(&mut self, i: usize) -> io::Result<&mut ControlConn> {
        self.controls[i].as_mut().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, format!("daemon {i} is down"))
        })
    }

    /// Liveness per daemon: the process exists and has not exited.
    /// (A health check on the OS process, not the protocol — a wedged
    /// daemon still pings via [`ControlConn::ping`].)
    pub fn health(&mut self) -> Vec<bool> {
        self.procs
            .iter_mut()
            .map(|p| match p {
                Some(child) => matches!(child.try_wait(), Ok(None)),
                None => false,
            })
            .collect()
    }

    /// Is daemon `i` currently up (not killed, process alive)?
    pub fn alive(&mut self, i: usize) -> bool {
        self.health()[i]
    }

    /// SIGKILL daemon `i` — no graceful shutdown, no final checkpoint;
    /// whatever the daemon last persisted is what a restore gets.
    pub fn kill(&mut self, i: usize) -> io::Result<()> {
        let Some(mut child) = self.procs[i].take() else {
            return Ok(()); // already down
        };
        child.kill()?;
        child.wait()?;
        self.controls[i] = None;
        Ok(())
    }

    /// Respawn a killed daemon on its original listen address
    /// (`restore` = rebuild from its checkpoint file). Surviving peers'
    /// dialers are already redialing that address, so the mesh heals on
    /// its own; only the respawned daemon needs a fresh `Connect` book
    /// for the peers *it* dials.
    pub fn respawn(&mut self, i: usize, restore: bool) -> io::Result<()> {
        if self.procs[i].is_some() {
            return Ok(()); // already up
        }
        let listen = self.addrs[i].clone();
        // the freed port can lag a SIGKILL by a moment; retry the bind
        let mut last_err = None;
        for _ in 0..20 {
            match self.spawn_daemon(i, &listen, restore) {
                Ok((child, addr)) => {
                    debug_assert_eq!(addr, listen);
                    self.procs[i] = Some(child);
                    self.controls[i] = Some(ControlConn::connect(&addr, self.genesis_id)?);
                    let peers = self.address_book(i);
                    return self.control(i)?.send(&WireMsg::Connect { peers });
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
        Err(last_err.expect("retry loop ran"))
    }

    fn wait_mesh(&mut self, timeout: Duration) -> io::Result<()> {
        let want = (self.controls.len() - 1) as u32;
        let deadline = Instant::now() + timeout;
        loop {
            let st = self.status()?;
            if st.iter().all(|s| s.connected >= want) {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("mesh not up: {st:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Poll each daemon's status once (errors if any daemon is down).
    pub fn status(&mut self) -> io::Result<Vec<StatusReport>> {
        (0..self.controls.len())
            .map(|i| match self.control(i)?.request(&WireMsg::StatusReq)? {
                WireMsg::Status(s) => Ok(s),
                other => Err(bad_reply("Status", &other)),
            })
            .collect()
    }

    /// Wait until every replica reports length `len` with no orphans and
    /// nothing missing.
    pub fn wait_converged(&mut self, len: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let st = self.status()?;
            if st
                .iter()
                .all(|s| s.len as usize == len && s.orphans == 0 && s.missing == 0)
            {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no convergence to len {len}: {st:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Activate daemon `target` at `slot`; `true` if it published.
    /// (The soak loop drives single activations without lockstep.)
    pub fn activate(&mut self, target: usize, slot: u64) -> io::Result<bool> {
        match self.control(target)?.request(&WireMsg::Activate { slot })? {
            WireMsg::Activated { published, .. } => Ok(published),
            other => Err(bad_reply("Activated", &other)),
        }
    }

    /// Drive `schedule` in lockstep: activation `k` runs at global slot
    /// `k + 1` on daemon `schedule[k]`, and the cluster must fully
    /// converge before the next activation fires.
    pub fn lockstep(&mut self, schedule: &[usize]) -> io::Result<LockstepReport> {
        let mut expected_len = 1usize; // genesis
        let mut published = 0u64;
        for (k, &peer) in schedule.iter().enumerate() {
            let slot = (k + 1) as u64;
            match self.control(peer)?.request(&WireMsg::Activate { slot })? {
                WireMsg::Activated { published: did, .. } => {
                    if did {
                        expected_len += 1;
                        published += 1;
                    }
                }
                other => return Err(bad_reply("Activated", &other)),
            }
            self.wait_converged(expected_len, Duration::from_secs(20))?;
        }
        Ok(LockstepReport {
            activations: schedule.len(),
            published,
            final_len: expected_len,
        })
    }

    /// Drive sustained publish traffic: `per_node` activations on every
    /// daemon concurrently (one driver thread each), slots striped so
    /// daemon `i`'s `k`-th activation runs at global slot
    /// `k * nodes + i + 1`. Returns throughput plus the daemons' own
    /// socket-level accounting.
    pub fn throughput(&mut self, per_node: usize) -> io::Result<ThroughputReport> {
        let n = self.controls.len();
        let conns: Vec<&mut ControlConn> = self
            .controls
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                c.as_mut().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, format!("daemon {i} is down"))
                })
            })
            .collect::<io::Result<_>>()?;
        let t0 = Instant::now();
        let published: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = conns
                .into_iter()
                .enumerate()
                .map(|(i, conn)| {
                    scope.spawn(move || -> io::Result<u64> {
                        let mut published = 0;
                        for k in 0..per_node {
                            let slot = (k * n + i + 1) as u64;
                            match conn.request(&WireMsg::Activate { slot })? {
                                WireMsg::Activated { published: did, .. } => {
                                    published += u64::from(did)
                                }
                                other => return Err(bad_reply("Activated", &other)),
                            }
                        }
                        Ok(published)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver thread panicked"))
                .sum::<io::Result<u64>>()
        })?;
        let wall = t0.elapsed();
        // drain: converge on the common final length
        let final_len = 1 + published as usize;
        let t1 = Instant::now();
        self.wait_converged(final_len, Duration::from_secs(60))?;
        let drain = t1.elapsed();
        let metrics = self.metrics()?;
        let counter = |name: &str| -> u64 {
            metrics
                .iter()
                .flat_map(|(c, _)| c.iter())
                .filter(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .sum()
        };
        let rtt = metrics
            .iter()
            .flat_map(|(_, h)| h.iter())
            .filter(|(n, _, _)| n == "net.rtt_us")
            .fold((0, 0), |acc, (_, c, s)| (acc.0 + c, acc.1 + s));
        Ok(ThroughputReport {
            activations: per_node * n,
            published,
            wall,
            drain,
            final_len,
            frames_sent: counter("net.frames_sent"),
            bytes_sent: counter("net.bytes_sent"),
            frames_recv: counter("net.frames_recv"),
            bytes_recv: counter("net.bytes_recv"),
            rtt,
            dropped: counter("net.dropped"),
            rejected: counter("net.rejected"),
        })
    }

    /// Fetch every daemon's replica archive (insertion order, genesis
    /// excluded).
    pub fn archives(&mut self) -> io::Result<Vec<Vec<TxMessage>>> {
        (0..self.controls.len())
            .map(|i| match self.control(i)?.request(&WireMsg::ArchiveReq)? {
                WireMsg::Archive(msgs) => Ok(msgs),
                other => Err(bad_reply("Archive", &other)),
            })
            .collect()
    }

    /// Ask every daemon for its consensus evaluation at `slot`.
    pub fn evaluate(&mut self, slot: u64, eval_seed: u64) -> io::Result<Vec<(u32, u32)>> {
        (0..self.controls.len())
            .map(|i| {
                match self
                    .control(i)?
                    .request(&WireMsg::EvalReq { slot, eval_seed })?
                {
                    WireMsg::Eval {
                        loss_bits,
                        acc_bits,
                    } => Ok((loss_bits, acc_bits)),
                    other => Err(bad_reply("Eval", &other)),
                }
            })
            .collect()
    }

    /// Fetch every daemon's telemetry counters and histogram totals.
    #[allow(clippy::type_complexity)]
    pub fn metrics(&mut self) -> io::Result<Vec<(Vec<(String, u64)>, Vec<(String, u64, u64)>)>> {
        (0..self.controls.len())
            .map(|i| match self.control(i)?.request(&WireMsg::MetricsReq)? {
                WireMsg::Metrics {
                    counters,
                    histograms,
                } => Ok((counters, histograms)),
                other => Err(bad_reply("Metrics", &other)),
            })
            .collect()
    }

    /// Shut every daemon down and reap the processes.
    pub fn shutdown(mut self) -> io::Result<()> {
        for c in self.controls.iter_mut().flatten() {
            let _ = c.send(&WireMsg::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for child in self.procs.iter_mut().flatten() {
            loop {
                match child.try_wait()? {
                    Some(_) => break,
                    None if Instant::now() > deadline => {
                        child.kill()?;
                        child.wait()?;
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        if let Some(p) = self.proxies.take() {
            p.shutdown();
        }
        Ok(())
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in self.controls.iter_mut().flatten() {
            let _ = c.send(&WireMsg::Shutdown);
        }
        for child in self.procs.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(p) = self.proxies.take() {
            p.shutdown();
        }
    }
}

/// Executes a [`ChaosPlan`]'s kill schedule against a live cluster:
/// SIGKILL at `at_ms`, respawn (optionally `--restore`) at
/// `restore_at_ms`, with the cluster's own clock as the schedule's
/// clock. Call [`Supervisor::poll`] from the driving loop; call
/// [`Supervisor::heal`] once driving ends to bring every remaining
/// corpse back up so the final audit sees a full cluster.
pub struct Supervisor {
    /// Kills not yet executed, ascending `at_ms`.
    pending_kills: Vec<KillEvent>,
    /// Kills executed but not yet restored.
    pending_restores: Vec<KillEvent>,
    /// Kills performed so far.
    pub kills: u64,
    /// Respawns performed so far.
    pub respawns: u64,
}

impl Supervisor {
    /// A supervisor for `plan`'s kill schedule.
    pub fn new(plan: &ChaosPlan) -> Self {
        let mut pending_kills = plan.kills.clone();
        pending_kills.sort_by_key(|k| k.at_ms);
        Self {
            pending_kills,
            pending_restores: Vec::new(),
            kills: 0,
            respawns: 0,
        }
    }

    /// Execute every kill and restore that is due at the cluster's
    /// current clock. Health-checks before killing: a daemon that
    /// already died on its own is only respawned.
    pub fn poll(&mut self, cluster: &mut Cluster) -> io::Result<()> {
        let now = cluster.elapsed_ms();
        while self.pending_kills.first().is_some_and(|k| k.at_ms <= now) {
            let ev = self.pending_kills.remove(0);
            if cluster.alive(ev.daemon) {
                cluster.kill(ev.daemon)?;
                self.kills += 1;
            }
            self.pending_restores.push(ev);
        }
        let due: Vec<KillEvent> = {
            let mut due = Vec::new();
            self.pending_restores.retain(|ev| {
                if ev.restore_at_ms <= now {
                    due.push(*ev);
                    false
                } else {
                    true
                }
            });
            due
        };
        for ev in due {
            let restore = ev.recovery == Recovery::FromCheckpoint;
            cluster.respawn(ev.daemon, restore)?;
            self.respawns += 1;
        }
        Ok(())
    }

    /// All events executed?
    pub fn done(&self) -> bool {
        self.pending_kills.is_empty() && self.pending_restores.is_empty()
    }

    /// Respawn everything still scheduled or still down, regardless of
    /// time — the end-of-run heal before the convergence audit.
    pub fn heal(&mut self, cluster: &mut Cluster) -> io::Result<()> {
        self.pending_kills.clear(); // never executed: nothing to restore
        for ev in self.pending_restores.drain(..).collect::<Vec<_>>() {
            cluster.respawn(ev.daemon, ev.recovery == Recovery::FromCheckpoint)?;
            self.respawns += 1;
        }
        // belt and braces: anything else that died comes back too
        for i in 0..cluster.len() {
            if !cluster.alive(i) {
                cluster.respawn(i, true)?;
                self.respawns += 1;
            }
        }
        Ok(())
    }
}

/// Parse the daemon's `LISTEN <addr>` startup line.
fn read_listen_line(stdout: impl Read) -> io::Result<String> {
    let mut r = BufReader::new(stdout);
    let mut line = String::new();
    // std's read_line
    std::io::BufRead::read_line(&mut r, &mut line)?;
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("daemon did not announce its port: {line:?}"),
            )
        })?
        .to_string();
    Ok(addr)
}
