//! `lt-node` — one tangle-learning gossip peer behind a TCP socket.
//!
//! ```text
//! lt-node --id 0 --nodes 3 --seed 7 [--listen 127.0.0.1:0]
//!         [--queue-cap 1024] [--ping-ms 0]
//!         [--checkpoint <path>] [--checkpoint-every-ms 250] [--restore]
//! ```
//!
//! Prints `LISTEN <addr>` on stdout once the socket is bound, then serves
//! the wire protocol until a control connection sends `Shutdown`.
//! `--checkpoint` enables periodic crash-recovery checkpoints;
//! `--restore` rebuilds the replica from that file at startup (falling
//! back to genesis when the file is missing or corrupt).

use lt_net::{run_daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: lt-node --id <i> --nodes <n> --seed <s> \
         [--listen <addr>] [--queue-cap <n>] [--ping-ms <ms>] \
         [--checkpoint <path>] [--checkpoint-every-ms <ms>] [--restore]"
    );
    std::process::exit(2);
}

fn main() {
    let mut id: Option<usize> = None;
    let mut nodes: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut listen: Option<String> = None;
    let mut queue_cap: Option<usize> = None;
    let mut ping_ms: Option<u64> = None;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every_ms: Option<u64> = None;
    let mut restore = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("lt-node: {flag} needs a {what}");
                usage()
            })
        };
        match flag.as_str() {
            "--id" => id = Some(parse(&flag, &take("index"))),
            "--nodes" => nodes = Some(parse(&flag, &take("count"))),
            "--seed" => seed = Some(parse(&flag, &take("seed"))),
            "--listen" => listen = Some(take("address")),
            "--queue-cap" => queue_cap = Some(parse(&flag, &take("capacity"))),
            "--ping-ms" => ping_ms = Some(parse(&flag, &take("interval"))),
            "--checkpoint" => checkpoint = Some(take("path")),
            "--checkpoint-every-ms" => checkpoint_every_ms = Some(parse(&flag, &take("interval"))),
            "--restore" => restore = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("lt-node: unknown flag {other}");
                usage();
            }
        }
    }

    let (Some(id), Some(nodes), Some(seed)) = (id, nodes, seed) else {
        eprintln!("lt-node: --id, --nodes and --seed are required");
        usage();
    };
    if id >= nodes {
        eprintln!("lt-node: --id must be < --nodes");
        std::process::exit(2);
    }
    if restore && checkpoint.is_none() {
        eprintln!("lt-node: --restore needs --checkpoint");
        std::process::exit(2);
    }

    let mut cfg = DaemonConfig::new(id, nodes, seed);
    if let Some(l) = listen {
        cfg.listen = l;
    }
    if let Some(c) = queue_cap {
        cfg.queue_cap = c;
    }
    if let Some(p) = ping_ms {
        cfg.ping_interval_ms = p;
    }
    if let Some(path) = checkpoint {
        cfg.checkpoint = Some(path.into());
    }
    if let Some(ms) = checkpoint_every_ms {
        cfg.checkpoint_every_ms = ms;
    }
    cfg.restore = restore;

    if let Err(e) = run_daemon(cfg) {
        eprintln!("lt-node: {e}");
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(flag: &str, s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("lt-node: bad value for {flag}: {s:?}");
        usage()
    })
}
