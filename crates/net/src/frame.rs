//! Length-framed, versioned, checksummed wire format for `lt-node`.
//!
//! Every frame on a socket is:
//!
//! ```text
//! magic    b"LTNT"   (4 bytes)
//! version  u8        (currently 1)
//! kind     u8        (message discriminant)
//! len      u32 LE    (payload byte count, ≤ MAX_PAYLOAD)
//! payload  len bytes (kind-specific, see below)
//! checksum u64 LE    (FNV-1a over the kind byte then the payload)
//! ```
//!
//! Transaction-carrying frames ([`WireMsg::Publish`], [`WireMsg::Delta`],
//! [`WireMsg::Archive`]) embed [`TxMessage::encode`] bytes verbatim, whose
//! parameter payload is itself the checksummed `tinynn::wire` LTPV
//! encoding — so parameter corruption is caught twice (frame checksum at
//! the transport, payload checksum at the replica).
//!
//! Decoding is total: malformed input of any kind returns a
//! [`FrameError`], never panics, and an oversized length prefix is
//! rejected *before* any allocation happens.

use tangle_gossip::{ContentId, ProtocolMsg, TxMessage};

/// Frame magic bytes.
pub const MAGIC: &[u8; 4] = b"LTNT";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Header length: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4;
/// Checksum trailer length.
pub const TRAILER_LEN: usize = 8;
/// Hard bound on a frame payload — anything larger is rejected before
/// allocation (a hostile peer cannot make us reserve gigabytes).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Peer id that marks a control connection in [`WireMsg::Hello`].
pub const CONTROL_PEER: u64 = u64::MAX;

/// Errors produced while decoding a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes for the declared structure.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown message kind.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u64),
    /// Frame checksum mismatch.
    BadChecksum,
    /// Payload structure invalid for the declared kind.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::TooLarge(n) => write!(f, "payload of {n} bytes exceeds the frame bound"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One peer's snapshot of its own state, served to `StatusReq`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Replica length (including the genesis).
    pub len: u32,
    /// Buffered orphans.
    pub orphans: u32,
    /// Missing parents the repair protocol is pulling.
    pub missing: u32,
    /// Established data-plane connections.
    pub connected: u32,
    /// Highest activation slot processed so far.
    pub last_slot: u64,
}

/// Every message that can travel over an `lt-node` socket: the four
/// gossip protocol messages (mapped 1:1 onto
/// [`ProtocolMsg`]), liveness probes, and the
/// control plane the scale harness drives daemons with.
#[derive(Clone, Debug)]
pub enum WireMsg {
    /// Connection preamble: protocol version check plus the sender's
    /// peer id ([`CONTROL_PEER`] for a control connection) and genesis
    /// content id (refuse to gossip across different ledgers).
    Hello {
        /// Sender peer id.
        peer: u64,
        /// Content id of the sender's genesis.
        genesis: u64,
    },
    /// A freshly published transaction flooding the topology.
    Publish(TxMessage),
    /// Repair protocol: "these are my current heads".
    Advertise {
        /// Content ids of the sender's tips.
        heads: Vec<ContentId>,
    },
    /// Repair protocol: "send me these transactions".
    Request {
        /// Content ids the sender is missing.
        wants: Vec<ContentId>,
    },
    /// A transaction re-sent in response to an advertise or request.
    Delta(TxMessage),
    /// Liveness probe; `sent_us` is the sender's monotonic clock.
    Ping {
        /// Correlates the pong.
        nonce: u64,
        /// Sender send time (echoed back for RTT measurement).
        sent_us: u64,
    },
    /// Probe reply, echoing the ping verbatim.
    Pong {
        /// Echoed nonce.
        nonce: u64,
        /// Echoed send time.
        sent_us: u64,
    },
    /// Control: run one training activation at global slot `slot`.
    Activate {
        /// Global activation slot (= round in lockstep schedules).
        slot: u64,
    },
    /// Control reply: the activation ran.
    Activated {
        /// Echoed slot.
        slot: u64,
        /// Whether the publish gate passed.
        published: bool,
        /// Replica length after the activation.
        len: u32,
    },
    /// Control: report current peer state.
    StatusReq,
    /// Control reply to [`WireMsg::StatusReq`].
    Status(StatusReport),
    /// Control: send the full replica archive (excluding the genesis).
    ArchiveReq,
    /// Control reply: verbatim archived transactions in insertion order.
    Archive(Vec<TxMessage>),
    /// Control: evaluate the consensus model as of `slot`.
    EvalReq {
        /// Total rounds driven so far (the evaluation is built at
        /// `slot + 1`, exactly like the round simulator's).
        slot: u64,
        /// Picks the shared evaluation pool.
        eval_seed: u64,
    },
    /// Control reply: consensus `(loss, accuracy)` as exact f32 bits.
    Eval {
        /// `loss.to_bits()`.
        loss_bits: u32,
        /// `accuracy.to_bits()`.
        acc_bits: u32,
    },
    /// Control: report telemetry counters and histogram totals.
    MetricsReq,
    /// Control reply: counter values and histogram `(count, sum)`s.
    Metrics {
        /// Counter name → value.
        counters: Vec<(String, u64)>,
        /// Histogram name → (count, sum).
        histograms: Vec<(String, u64, u64)>,
    },
    /// Control: the full peer address book; the daemon dials every peer
    /// with a higher id than its own (one socket per unordered pair).
    Connect {
        /// `(peer id, host:port)` for every daemon in the cluster.
        peers: Vec<(u64, String)>,
    },
    /// Control: exit cleanly.
    Shutdown,
}

const K_HELLO: u8 = 0;
const K_PUBLISH: u8 = 1;
const K_ADVERTISE: u8 = 2;
const K_REQUEST: u8 = 3;
const K_DELTA: u8 = 4;
const K_PING: u8 = 5;
const K_PONG: u8 = 6;
const K_ACTIVATE: u8 = 7;
const K_ACTIVATED: u8 = 8;
const K_STATUS_REQ: u8 = 9;
const K_STATUS: u8 = 10;
const K_ARCHIVE_REQ: u8 = 11;
const K_ARCHIVE: u8 = 12;
const K_EVAL_REQ: u8 = 13;
const K_EVAL: u8 = 14;
const K_METRICS_REQ: u8 = 15;
const K_METRICS: u8 = 16;
const K_CONNECT: u8 = 17;
const K_SHUTDOWN: u8 = 18;

/// Frame checksum: FNV-1a chained over the kind byte then the payload,
/// so a bit flip that turns one message kind into another with the same
/// payload layout (e.g. `Advertise` → `Request`) still fails the check.
fn frame_check(kind: u8, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h ^= kind as u64;
    h = h.wrapping_mul(0x0000_0100_0000_01B3);
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Plain FNV-1a over a byte slice. Used by the daemon checkpoint
/// envelope, which needs a whole-file checksum without a kind byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    b: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(b: &'a [u8]) -> Self {
        Self { b }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.b.len() < n {
            return Err(FrameError::Truncated);
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A `u32`-prefixed count, sanity-bounded by the bytes actually
    /// remaining so a hostile count cannot drive a huge reservation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.b.len() {
            return Err(FrameError::Truncated);
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::Malformed("non-utf8 string"))
    }

    fn tx(&mut self) -> Result<TxMessage, FrameError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        TxMessage::decode(raw).ok_or(FrameError::Malformed("transaction framing"))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing payload bytes"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_tx(out: &mut Vec<u8>, m: &TxMessage) {
    let enc = m.encode();
    out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
    out.extend_from_slice(&enc);
}

fn put_cids(out: &mut Vec<u8>, cids: &[ContentId]) {
    out.extend_from_slice(&(cids.len() as u32).to_le_bytes());
    for c in cids {
        out.extend_from_slice(&c.0.to_le_bytes());
    }
}

fn cids(c: &mut Cursor<'_>) -> Result<Vec<ContentId>, FrameError> {
    let n = c.count(8)?;
    (0..n).map(|_| Ok(ContentId(c.u64()?))).collect()
}

impl WireMsg {
    fn kind(&self) -> u8 {
        match self {
            WireMsg::Hello { .. } => K_HELLO,
            WireMsg::Publish(_) => K_PUBLISH,
            WireMsg::Advertise { .. } => K_ADVERTISE,
            WireMsg::Request { .. } => K_REQUEST,
            WireMsg::Delta(_) => K_DELTA,
            WireMsg::Ping { .. } => K_PING,
            WireMsg::Pong { .. } => K_PONG,
            WireMsg::Activate { .. } => K_ACTIVATE,
            WireMsg::Activated { .. } => K_ACTIVATED,
            WireMsg::StatusReq => K_STATUS_REQ,
            WireMsg::Status(_) => K_STATUS,
            WireMsg::ArchiveReq => K_ARCHIVE_REQ,
            WireMsg::Archive(_) => K_ARCHIVE,
            WireMsg::EvalReq { .. } => K_EVAL_REQ,
            WireMsg::Eval { .. } => K_EVAL,
            WireMsg::MetricsReq => K_METRICS_REQ,
            WireMsg::Metrics { .. } => K_METRICS,
            WireMsg::Connect { .. } => K_CONNECT,
            WireMsg::Shutdown => K_SHUTDOWN,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireMsg::Hello { peer, genesis } => {
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&genesis.to_le_bytes());
            }
            WireMsg::Publish(m) | WireMsg::Delta(m) => {
                out = m.encode().to_vec();
            }
            WireMsg::Advertise { heads } => put_cids(&mut out, heads),
            WireMsg::Request { wants } => put_cids(&mut out, wants),
            WireMsg::Ping { nonce, sent_us } | WireMsg::Pong { nonce, sent_us } => {
                out.extend_from_slice(&nonce.to_le_bytes());
                out.extend_from_slice(&sent_us.to_le_bytes());
            }
            WireMsg::Activate { slot } => out.extend_from_slice(&slot.to_le_bytes()),
            WireMsg::Activated {
                slot,
                published,
                len,
            } => {
                out.extend_from_slice(&slot.to_le_bytes());
                out.push(*published as u8);
                out.extend_from_slice(&len.to_le_bytes());
            }
            WireMsg::StatusReq | WireMsg::ArchiveReq | WireMsg::MetricsReq | WireMsg::Shutdown => {}
            WireMsg::Status(s) => {
                out.extend_from_slice(&s.len.to_le_bytes());
                out.extend_from_slice(&s.orphans.to_le_bytes());
                out.extend_from_slice(&s.missing.to_le_bytes());
                out.extend_from_slice(&s.connected.to_le_bytes());
                out.extend_from_slice(&s.last_slot.to_le_bytes());
            }
            WireMsg::Archive(msgs) => {
                out.extend_from_slice(&(msgs.len() as u32).to_le_bytes());
                for m in msgs {
                    put_tx(&mut out, m);
                }
            }
            WireMsg::EvalReq { slot, eval_seed } => {
                out.extend_from_slice(&slot.to_le_bytes());
                out.extend_from_slice(&eval_seed.to_le_bytes());
            }
            WireMsg::Eval {
                loss_bits,
                acc_bits,
            } => {
                out.extend_from_slice(&loss_bits.to_le_bytes());
                out.extend_from_slice(&acc_bits.to_le_bytes());
            }
            WireMsg::Metrics {
                counters,
                histograms,
            } => {
                out.extend_from_slice(&(counters.len() as u32).to_le_bytes());
                for (name, v) in counters {
                    put_string(&mut out, name);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(histograms.len() as u32).to_le_bytes());
                for (name, count, sum) in histograms {
                    put_string(&mut out, name);
                    out.extend_from_slice(&count.to_le_bytes());
                    out.extend_from_slice(&sum.to_le_bytes());
                }
            }
            WireMsg::Connect { peers } => {
                out.extend_from_slice(&(peers.len() as u32).to_le_bytes());
                for (id, addr) in peers {
                    out.extend_from_slice(&id.to_le_bytes());
                    put_string(&mut out, addr);
                }
            }
        }
        out
    }

    fn decode_payload(kind: u8, b: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(b);
        let msg = match kind {
            K_HELLO => WireMsg::Hello {
                peer: c.u64()?,
                genesis: c.u64()?,
            },
            K_PUBLISH => {
                return TxMessage::decode(b)
                    .map(WireMsg::Publish)
                    .ok_or(FrameError::Malformed("transaction framing"));
            }
            K_DELTA => {
                return TxMessage::decode(b)
                    .map(WireMsg::Delta)
                    .ok_or(FrameError::Malformed("transaction framing"));
            }
            K_ADVERTISE => WireMsg::Advertise {
                heads: cids(&mut c)?,
            },
            K_REQUEST => WireMsg::Request {
                wants: cids(&mut c)?,
            },
            K_PING => WireMsg::Ping {
                nonce: c.u64()?,
                sent_us: c.u64()?,
            },
            K_PONG => WireMsg::Pong {
                nonce: c.u64()?,
                sent_us: c.u64()?,
            },
            K_ACTIVATE => WireMsg::Activate { slot: c.u64()? },
            K_ACTIVATED => WireMsg::Activated {
                slot: c.u64()?,
                published: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Malformed("boolean out of range")),
                },
                len: c.u32()?,
            },
            K_STATUS_REQ => WireMsg::StatusReq,
            K_STATUS => WireMsg::Status(StatusReport {
                len: c.u32()?,
                orphans: c.u32()?,
                missing: c.u32()?,
                connected: c.u32()?,
                last_slot: c.u64()?,
            }),
            K_ARCHIVE_REQ => WireMsg::ArchiveReq,
            K_ARCHIVE => {
                let n = c.count(4)?;
                let msgs = (0..n).map(|_| c.tx()).collect::<Result<_, _>>()?;
                WireMsg::Archive(msgs)
            }
            K_EVAL_REQ => WireMsg::EvalReq {
                slot: c.u64()?,
                eval_seed: c.u64()?,
            },
            K_EVAL => WireMsg::Eval {
                loss_bits: c.u32()?,
                acc_bits: c.u32()?,
            },
            K_METRICS_REQ => WireMsg::MetricsReq,
            K_METRICS => {
                let nc = c.count(3)?;
                let counters = (0..nc)
                    .map(|_| Ok((c.string()?, c.u64()?)))
                    .collect::<Result<_, FrameError>>()?;
                let nh = c.count(3)?;
                let histograms = (0..nh)
                    .map(|_| Ok((c.string()?, c.u64()?, c.u64()?)))
                    .collect::<Result<_, FrameError>>()?;
                WireMsg::Metrics {
                    counters,
                    histograms,
                }
            }
            K_CONNECT => {
                let n = c.count(10)?;
                let peers = (0..n)
                    .map(|_| Ok((c.u64()?, c.string()?)))
                    .collect::<Result<_, FrameError>>()?;
                WireMsg::Connect { peers }
            }
            K_SHUTDOWN => WireMsg::Shutdown,
            other => return Err(FrameError::BadKind(other)),
        };
        c.done()?;
        Ok(msg)
    }

    /// Map a gossip [`ProtocolMsg`] onto its wire frame.
    pub fn from_protocol(msg: ProtocolMsg) -> Self {
        match msg {
            ProtocolMsg::Publish(m) => WireMsg::Publish(m),
            ProtocolMsg::Advertise { heads } => WireMsg::Advertise { heads },
            ProtocolMsg::Request { wants } => WireMsg::Request { wants },
            ProtocolMsg::Delta(m) => WireMsg::Delta(m),
        }
    }

    /// The gossip [`ProtocolMsg`] this frame carries, if it is one of
    /// the four data-plane messages.
    pub fn into_protocol(self) -> Option<ProtocolMsg> {
        match self {
            WireMsg::Publish(m) => Some(ProtocolMsg::Publish(m)),
            WireMsg::Advertise { heads } => Some(ProtocolMsg::Advertise { heads }),
            WireMsg::Request { wants } => Some(ProtocolMsg::Request { wants }),
            WireMsg::Delta(m) => Some(ProtocolMsg::Delta(m)),
            _ => None,
        }
    }
}

/// Encode one frame (header + payload + checksum trailer).
pub fn encode_frame(msg: &WireMsg) -> Vec<u8> {
    let payload = msg.payload();
    debug_assert!(payload.len() <= MAX_PAYLOAD, "oversized frame payload");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(msg.kind());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let check = frame_check(msg.kind(), &payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Validate a frame header. Returns `(kind, payload_len)`, rejecting an
/// oversized length prefix before the caller allocates anything.
pub fn decode_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize), FrameError> {
    if &h[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if h[4] != VERSION {
        return Err(FrameError::BadVersion(h[4]));
    }
    let len = u32::from_le_bytes(h[6..10].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge(len as u64));
    }
    Ok((h[5], len))
}

/// Decode the payload + trailer that followed a validated header.
pub fn decode_body(kind: u8, body: &[u8]) -> Result<WireMsg, FrameError> {
    if body.len() < TRAILER_LEN {
        return Err(FrameError::Truncated);
    }
    let (payload, trailer) = body.split_at(body.len() - TRAILER_LEN);
    let check = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if frame_check(kind, payload) != check {
        return Err(FrameError::BadChecksum);
    }
    WireMsg::decode_payload(kind, payload)
}

/// Decode one whole frame from the front of `buf`. Returns the message
/// and the total bytes consumed. `Err(Truncated)` means "feed me more
/// bytes" when the prefix so far is valid.
pub fn decode_frame(buf: &[u8]) -> Result<(WireMsg, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("checked");
    let (kind, len) = decode_header(header)?;
    let total = HEADER_LEN + len + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let msg = decode_body(kind, &buf[HEADER_LEN..total])?;
    Ok((msg, total))
}

/// Read one frame from a blocking stream. Returns the message and its
/// total on-wire byte count.
///
/// `Ok(None)` means the stream closed cleanly *between* frames; an EOF
/// mid-frame is an error. Frame-level decode failures are surfaced as
/// `io::ErrorKind::InvalidData` carrying the [`FrameError`].
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<(WireMsg, usize)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside frame header",
            ));
        }
        filled += n;
    }
    let (kind, len) = decode_header(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut body = vec![0u8; len + TRAILER_LEN];
    r.read_exact(&mut body)?;
    let msg = decode_body(kind, &body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some((msg, HEADER_LEN + body.len())))
}

/// Write one frame to a blocking stream.
pub fn write_frame(w: &mut impl std::io::Write, msg: &WireMsg) -> std::io::Result<()> {
    w.write_all(&encode_frame(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinynn::ParamVec;

    fn tx() -> TxMessage {
        TxMessage::create(&ParamVec(vec![1.0, -2.0]), vec![ContentId(7)], 3, 4, 0)
    }

    #[test]
    fn all_kinds_roundtrip() {
        let msgs = vec![
            WireMsg::Hello {
                peer: 2,
                genesis: 99,
            },
            WireMsg::Publish(tx()),
            WireMsg::Advertise {
                heads: vec![ContentId(1), ContentId(2)],
            },
            WireMsg::Request {
                wants: vec![ContentId(3)],
            },
            WireMsg::Delta(tx()),
            WireMsg::Ping {
                nonce: 5,
                sent_us: 6,
            },
            WireMsg::Pong {
                nonce: 5,
                sent_us: 6,
            },
            WireMsg::Activate { slot: 9 },
            WireMsg::Activated {
                slot: 9,
                published: true,
                len: 4,
            },
            WireMsg::StatusReq,
            WireMsg::Status(StatusReport {
                len: 4,
                orphans: 1,
                missing: 2,
                connected: 3,
                last_slot: 9,
            }),
            WireMsg::ArchiveReq,
            WireMsg::Archive(vec![tx(), tx()]),
            WireMsg::EvalReq {
                slot: 4,
                eval_seed: 7,
            },
            WireMsg::Eval {
                loss_bits: 1,
                acc_bits: 2,
            },
            WireMsg::MetricsReq,
            WireMsg::Metrics {
                counters: vec![("net.frames_sent".into(), 10)],
                histograms: vec![("net.rtt_us".into(), 2, 300)],
            },
            WireMsg::Connect {
                peers: vec![(0, "127.0.0.1:1234".into()), (1, "127.0.0.1:9".into())],
            },
            WireMsg::Shutdown,
        ];
        for m in msgs {
            let enc = encode_frame(&m);
            let (dec, used) = decode_frame(&enc).expect("roundtrip");
            assert_eq!(used, enc.len());
            // structural equality via re-encoding (TxMessage lacks Eq)
            assert_eq!(encode_frame(&dec), enc);
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut h = Vec::new();
        h.extend_from_slice(MAGIC);
        h.push(VERSION);
        h.push(0);
        h.extend_from_slice(&u32::MAX.to_le_bytes());
        let header: [u8; HEADER_LEN] = h.try_into().expect("header");
        assert!(matches!(
            decode_header(&header),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn corrupt_frame_fails_checksum() {
        let mut enc = encode_frame(&WireMsg::Activate { slot: 3 });
        let at = HEADER_LEN; // first payload byte
        enc[at] ^= 0x01;
        assert!(matches!(decode_frame(&enc), Err(FrameError::BadChecksum)));
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &WireMsg::Activate { slot: 3 }).expect("write");
        write_frame(&mut buf, &WireMsg::StatusReq).expect("write");
        let mut r = &buf[..];
        let (first, n1) = read_frame(&mut r).expect("io").expect("frame");
        assert!(matches!(first, WireMsg::Activate { slot: 3 }));
        let (second, n2) = read_frame(&mut r).expect("io").expect("frame");
        assert!(matches!(second, WireMsg::StatusReq));
        assert_eq!(n1 + n2, buf.len(), "byte accounting must cover the stream");
        assert!(read_frame(&mut r).expect("eof").is_none());
    }
}
