//! Bounded per-connection send queues.
//!
//! Each established connection gets one [`SendQueue`] feeding a dedicated
//! writer thread. The queue is *bounded and non-blocking on the producer
//! side*: the protocol thread must never stall because one slow peer
//! stopped draining its socket. An overflowing push fails — and the
//! caller is required to account for it (the daemon counts it under
//! `net.dropped`), because a frame silently swallowed here would be
//! indistinguishable from network loss with no counter to show for it.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Inner {
    q: Mutex<State>,
    cv: Condvar,
    cap: usize,
}

struct State {
    frames: VecDeque<Vec<u8>>,
    closed: bool,
}

/// A bounded MPSC byte-frame queue: any thread may push, one writer
/// thread pops (blocking). Cloning shares the queue.
#[derive(Clone)]
pub struct SendQueue {
    inner: Arc<Inner>,
}

impl SendQueue {
    /// A queue holding at most `cap` frames.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a send queue must hold at least one frame");
        Self {
            inner: Arc::new(Inner {
                q: Mutex::new(State {
                    frames: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
                cap,
            }),
        }
    }

    /// Enqueue a frame. Returns `false` — without blocking — when the
    /// queue is full or closed; the caller owns the accounting.
    pub fn push(&self, frame: Vec<u8>) -> bool {
        let mut st = self.inner.q.lock().expect("queue poisoned");
        if st.closed || st.frames.len() >= self.inner.cap {
            return false;
        }
        st.frames.push_back(frame);
        drop(st);
        self.inner.cv.notify_one();
        true
    }

    /// Dequeue the next frame, blocking until one arrives. `None` once
    /// the queue is closed *and* drained.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut st = self.inner.q.lock().expect("queue poisoned");
        loop {
            if let Some(f) = st.frames.pop_front() {
                return Some(f);
            }
            if st.closed {
                return None;
            }
            st = self.inner.cv.wait(st).expect("queue poisoned");
        }
    }

    /// Close the queue: future pushes fail, the writer drains what is
    /// left and then sees `None`.
    pub fn close(&self) {
        self.inner.q.lock().expect("queue poisoned").closed = true;
        self.inner.cv.notify_all();
    }

    /// Frames currently buffered.
    pub fn len(&self) -> usize {
        self.inner.q.lock().expect("queue poisoned").frames.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_fails_without_blocking() {
        let q = SendQueue::new(2);
        assert!(q.push(vec![1]));
        assert!(q.push(vec![2]));
        assert!(!q.push(vec![3]), "third push must overflow");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = SendQueue::new(4);
        q.push(vec![1]);
        q.push(vec![2]);
        q.close();
        assert!(!q.push(vec![3]), "push after close must fail");
        assert_eq!(q.pop(), Some(vec![1]));
        assert_eq!(q.pop(), Some(vec![2]));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_wakes_on_push() {
        let q = SendQueue::new(4);
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(vec![7]);
        assert_eq!(h.join().expect("no panic"), Some(vec![7]));
    }
}
