//! The `lt-node` daemon: one gossip peer behind a TCP socket.
//!
//! Process layout:
//!
//! * the **protocol thread** (this module's main loop) owns the
//!   [`NodeProtocol`], the training state, and the [`Router`]; it is the
//!   only thread that mutates the replica, so no locking is needed on
//!   the hot path;
//! * one **reader thread** per connection parses frames and forwards
//!   them to the protocol thread over a channel (counting
//!   `net.frames_recv` / `net.bytes_recv` at the socket);
//! * one **writer thread** per connection drains that connection's
//!   bounded [`SendQueue`] (counting `net.frames_sent` /
//!   `net.bytes_sent` after each successful write);
//! * one **dialer thread** per higher-id peer keeps the outgoing
//!   connection alive, reconnecting with exponential backoff (counted
//!   under `net.reconnects`).
//!
//! Frames that cannot be handed to a writer are never silently lost:
//! a send to a peer with no live connection counts as `net.rejected`,
//! and a send that overflows a bounded queue counts as `net.dropped`.
//!
//! On startup the daemon prints `LISTEN <addr>` on stdout — the contract
//! the [`crate::driver`] uses to find the ephemeral port.

use crate::frame::{read_frame, StatusReport, WireMsg, CONTROL_PEER};
use crate::preset::{Preset, ORPHAN_CAP};
use crate::protocol::NodeProtocol;
use crate::queue::SendQueue;
use learning_tangle::node::Node;
use learning_tangle::{EvalCache, ScratchPool, SimConfig, DEFAULT_EVAL_CACHE_CAPACITY};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use tangle_gossip::learn::{consensus_eval, train_step};
use tangle_gossip::{ProtocolMsg, Transport, TxMessage};
use tangle_ledger::AnalysisCache;

/// Configuration of one daemon process.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// This daemon's peer id (also its training node id).
    pub id: usize,
    /// Cluster population (= dataset clients).
    pub nodes: usize,
    /// Shared experiment seed (see [`Preset`]).
    pub seed: u64,
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub listen: String,
    /// Bound on each connection's send queue, in frames.
    pub queue_cap: usize,
    /// Interval between liveness pings to each connected peer, in
    /// milliseconds (0 = off; keep off for deterministic frame counts).
    pub ping_interval_ms: u64,
}

impl DaemonConfig {
    /// Defaults for `id` of `nodes` peers at `seed`.
    pub fn new(id: usize, nodes: usize, seed: u64) -> Self {
        Self {
            id,
            nodes,
            seed,
            listen: "127.0.0.1:0".to_string(),
            queue_cap: 1024,
            ping_interval_ms: 0,
        }
    }
}

/// Routes outbound frames to per-connection send queues. The daemon's
/// [`Transport`]: a gossip send becomes an encoded frame on the target
/// connection's bounded queue.
pub struct Router {
    queues: HashMap<usize, (u64, SendQueue)>,
    telemetry: lt_telemetry::Telemetry,
}

impl Router {
    /// An empty router counting into `telemetry`.
    pub fn new(telemetry: lt_telemetry::Telemetry) -> Self {
        Self {
            queues: HashMap::new(),
            telemetry,
        }
    }

    /// Register the live connection `token` to `peer`.
    pub fn attach(&mut self, peer: usize, token: u64, queue: SendQueue) {
        self.queues.insert(peer, (token, queue));
    }

    /// Drop the connection to `peer`, but only if `token` still names the
    /// current one (a reconnect may already have replaced it).
    pub fn detach(&mut self, peer: usize, token: u64) {
        if self.queues.get(&peer).is_some_and(|(t, _)| *t == token) {
            self.queues.remove(&peer);
        }
    }

    /// Currently connected peer ids, ascending.
    pub fn peer_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.queues.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Live connection count.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// No live connections?
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Enqueue one frame for `to`. `false` — with the loss accounted
    /// under `net.rejected` (peer down) or `net.dropped` (queue
    /// overflow) — when the frame will not reach the wire.
    pub fn send_wire(&mut self, to: usize, msg: &WireMsg) -> bool {
        let Some((_, q)) = self.queues.get(&to) else {
            self.telemetry.count("net.rejected", 1);
            return false;
        };
        if q.push(crate::frame::encode_frame(msg)) {
            true
        } else {
            self.telemetry.count("net.dropped", 1);
            false
        }
    }
}

impl Transport for Router {
    fn send(&mut self, _from: usize, to: usize, msg: ProtocolMsg) -> bool {
        self.send_wire(to, &WireMsg::from_protocol(msg))
    }
}

enum Event {
    /// A data connection to `peer` came up.
    PeerUp {
        peer: usize,
        token: u64,
        queue: SendQueue,
    },
    /// The data connection `token` to `peer` went down.
    PeerDown { peer: usize, token: u64 },
    /// A frame arrived from data peer `from`.
    Peer { from: usize, msg: WireMsg },
    /// A frame arrived on a control connection; replies go to `reply`.
    Control { reply: SendQueue, msg: WireMsg },
}

/// Socket-level counter names for one direction of a connection class.
/// Data connections (peer gossip) and control connections (the harness)
/// are accounted separately so daemon-to-daemon totals stay symmetric:
/// after quiescence, the data frames one daemon sent are exactly the
/// data frames its peers received.
#[derive(Clone, Copy)]
struct WireCounters {
    frames_sent: &'static str,
    bytes_sent: &'static str,
    frames_recv: &'static str,
    bytes_recv: &'static str,
}

const DATA_COUNTERS: WireCounters = WireCounters {
    frames_sent: "net.frames_sent",
    bytes_sent: "net.bytes_sent",
    frames_recv: "net.frames_recv",
    bytes_recv: "net.bytes_recv",
};

const CTL_COUNTERS: WireCounters = WireCounters {
    frames_sent: "net.ctl_frames_sent",
    bytes_sent: "net.ctl_bytes_sent",
    frames_recv: "net.ctl_frames_recv",
    bytes_recv: "net.ctl_bytes_recv",
};

/// Spawn the writer thread draining `queue` into `stream`.
fn spawn_writer(
    stream: TcpStream,
    queue: SendQueue,
    telemetry: lt_telemetry::Telemetry,
    counters: WireCounters,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut w = BufWriter::new(stream);
        while let Some(frame) = queue.pop() {
            if w.write_all(&frame).and_then(|_| w.flush()).is_err() {
                break;
            }
            telemetry.count(counters.frames_sent, 1);
            telemetry.count(counters.bytes_sent, frame.len() as u64);
        }
    })
}

/// Read frames from `r` until EOF or error, counting socket-level
/// receive totals and handing each message to `deliver` (which returns
/// `false` once the protocol thread is gone).
fn read_loop(
    r: &mut impl std::io::Read,
    telemetry: &lt_telemetry::Telemetry,
    counters: WireCounters,
    mut deliver: impl FnMut(WireMsg) -> bool,
) {
    loop {
        match read_frame(r) {
            Ok(Some((msg, bytes))) => {
                telemetry.count(counters.frames_recv, 1);
                telemetry.count(counters.bytes_recv, bytes as u64);
                if !deliver(msg) {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                telemetry.count("net.recv_errors", 1);
                return;
            }
        }
    }
}

/// Handle one freshly accepted connection: classify by its `Hello`,
/// register it, and pump its frames into the protocol thread.
#[allow(clippy::too_many_arguments)]
fn serve_conn(
    stream: TcpStream,
    genesis_id: u64,
    queue_cap: usize,
    token: u64,
    events: Sender<Event>,
    telemetry: lt_telemetry::Telemetry,
) {
    let write_half = stream.try_clone().expect("clone accepted socket");
    // ONE buffered reader for the connection's whole life: bytes past the
    // Hello may already sit in its buffer.
    let mut r = BufReader::new(stream);
    let (hello, hello_bytes) = match read_frame(&mut r) {
        Ok(Some((WireMsg::Hello { peer, genesis }, bytes))) => {
            if genesis != genesis_id {
                // refuse to gossip across different ledgers
                return;
            }
            (peer, bytes)
        }
        _ => return,
    };
    let counters = if hello == CONTROL_PEER {
        CTL_COUNTERS
    } else {
        DATA_COUNTERS
    };
    telemetry.count(counters.frames_recv, 1);
    telemetry.count(counters.bytes_recv, hello_bytes as u64);
    let queue = SendQueue::new(queue_cap);
    let writer = spawn_writer(write_half, queue.clone(), telemetry.clone(), counters);
    if hello == CONTROL_PEER {
        read_loop(&mut r, &telemetry, counters, |msg| {
            events
                .send(Event::Control {
                    reply: queue.clone(),
                    msg,
                })
                .is_ok()
        });
    } else {
        let peer = hello as usize;
        if events
            .send(Event::PeerUp {
                peer,
                token,
                queue: queue.clone(),
            })
            .is_err()
        {
            queue.close();
            return;
        }
        read_loop(&mut r, &telemetry, counters, |msg| {
            events.send(Event::Peer { from: peer, msg }).is_ok()
        });
        let _ = events.send(Event::PeerDown { peer, token });
    }
    queue.close();
    let _ = writer.join();
}

/// Everything a dialer thread needs to know about one outgoing link.
struct Dial {
    self_id: usize,
    peer: usize,
    addr: String,
    genesis_id: u64,
    queue_cap: usize,
    token_base: u64,
}

/// Keep the outgoing connection to `peer` alive: dial, handshake,
/// register, pump inbound frames; on failure back off exponentially and
/// redial (counted under `net.reconnects`). Gives up once the protocol
/// thread is gone.
fn dial_loop(dial: Dial, events: Sender<Event>, telemetry: lt_telemetry::Telemetry) {
    let Dial {
        self_id,
        peer,
        addr,
        genesis_id,
        queue_cap,
        token_base,
    } = dial;
    let mut backoff_exp: u32 = 0;
    let mut conn_seq: u64 = 0;
    loop {
        if let Ok(stream) = TcpStream::connect(&addr) {
            let _ = stream.set_nodelay(true);
            let hello = crate::frame::encode_frame(&WireMsg::Hello {
                peer: self_id as u64,
                genesis: genesis_id,
            });
            let mut write_half = stream.try_clone().expect("clone dialed socket");
            if write_half.write_all(&hello).is_ok() {
                telemetry.count("net.frames_sent", 1);
                telemetry.count("net.bytes_sent", hello.len() as u64);
                backoff_exp = 0;
                conn_seq += 1;
                // distinct odd token per connection incarnation
                let token = token_base + (conn_seq << 32);
                let queue = SendQueue::new(queue_cap);
                let writer =
                    spawn_writer(write_half, queue.clone(), telemetry.clone(), DATA_COUNTERS);
                if events
                    .send(Event::PeerUp {
                        peer,
                        token,
                        queue: queue.clone(),
                    })
                    .is_err()
                {
                    queue.close();
                    return;
                }
                let mut r = BufReader::new(stream);
                read_loop(&mut r, &telemetry, DATA_COUNTERS, |msg| {
                    events.send(Event::Peer { from: peer, msg }).is_ok()
                });
                queue.close();
                let _ = writer.join();
                if events.send(Event::PeerDown { peer, token }).is_err() {
                    return;
                }
            }
        }
        // the connection failed or died: reconnect with backoff
        telemetry.count("net.reconnects", 1);
        backoff_exp = (backoff_exp + 1).min(6);
        std::thread::sleep(Duration::from_millis(25u64 << backoff_exp));
        // cheap liveness probe: a detach for a token that was never
        // attached is a no-op, but a closed channel ends the dialer
        if events
            .send(Event::PeerDown {
                peer,
                token: token_base,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Per-daemon training state: the full (deterministically regenerated)
/// node population, of which this daemon trains as node `id`.
struct Learner {
    nodes: Vec<Node>,
    cache: AnalysisCache,
    eval: EvalCache,
    scratch: ScratchPool<'static>,
    cfg: SimConfig,
    last_slot: u64,
}

/// Run the daemon until a `Shutdown` control frame arrives. Blocks the
/// calling thread; this is the whole life of an `lt-node` process.
pub fn run_daemon(cfg: DaemonConfig) -> std::io::Result<()> {
    assert!(cfg.id < cfg.nodes, "daemon id out of range");
    let preset = Preset {
        nodes: cfg.nodes,
        seed: cfg.seed,
    };
    let genesis = preset.genesis();
    let genesis_id = genesis.content_id().0;
    let telemetry = lt_telemetry::Telemetry::new(lt_telemetry::MemorySink::new());

    let mut proto = NodeProtocol::new(cfg.id, &genesis, 0, ORPHAN_CAP);
    proto.set_telemetry(telemetry.clone());
    let mut learner = Learner {
        nodes: preset.population(),
        cache: AnalysisCache::new(proto.peer().replica()),
        eval: EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY),
        scratch: ScratchPool::new(Box::new(Preset::build)),
        cfg: preset.sim_cfg(),
        last_slot: 0,
    };
    let mut router = Router::new(telemetry.clone());

    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    // the spawn contract: the driver parses this line for the port
    println!("LISTEN {addr}");
    std::io::stdout().flush()?;

    let (events_tx, events_rx): (Sender<Event>, Receiver<Event>) = mpsc::channel();
    {
        let tx = events_tx.clone();
        let tel = telemetry.clone();
        let queue_cap = cfg.queue_cap;
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let tx = tx.clone();
                let tel = tel.clone();
                // even tokens for accepted connections, odd for dialed
                let token = (i as u64) << 1;
                std::thread::spawn(move || {
                    serve_conn(stream, genesis_id, queue_cap, token, tx, tel)
                });
            }
        });
    }

    let start = Instant::now();
    let now_ms = |start: &Instant| start.elapsed().as_millis() as u64;
    let now_us = |start: &Instant| start.elapsed().as_micros() as u64;
    let mut dialed: HashMap<usize, String> = HashMap::new();
    let mut dial_tokens: u64 = 1;
    let mut next_ping = u64::MAX;
    let mut ping_nonce: u64 = 0;

    loop {
        let now = now_ms(&start);
        let mut deadline = now + 50;
        if let Some(wake) = proto.next_wake() {
            deadline = deadline.min(wake.max(now));
        }
        deadline = deadline.min(next_ping.max(now));
        let event = match events_rx.recv_timeout(Duration::from_millis(deadline - now)) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let now = now_ms(&start);
        proto.set_now(now);

        match event {
            Some(Event::PeerUp { peer, token, queue }) => {
                router.attach(peer, token, queue);
                proto.set_neighbours(router.peer_ids());
                // pull whatever the newly reachable peer has that we lack
                let heads = proto.peer().heads();
                router.send_wire(peer, &WireMsg::Advertise { heads });
                if cfg.ping_interval_ms > 0 && next_ping == u64::MAX {
                    next_ping = now + cfg.ping_interval_ms;
                }
            }
            Some(Event::PeerDown { peer, token }) => {
                router.detach(peer, token);
                proto.set_neighbours(router.peer_ids());
            }
            Some(Event::Peer { from, msg }) => match msg {
                WireMsg::Ping { nonce, sent_us } => {
                    router.send_wire(from, &WireMsg::Pong { nonce, sent_us });
                }
                WireMsg::Pong { sent_us, .. } => {
                    telemetry.record("net.rtt_us", now_us(&start).saturating_sub(sent_us));
                }
                other => {
                    if let Some(pm) = other.into_protocol() {
                        proto.on_message(from, pm, &mut router);
                    }
                }
            },
            Some(Event::Control { reply, msg }) => {
                let quit = handle_control(
                    &msg,
                    &reply,
                    &mut proto,
                    &mut learner,
                    &mut router,
                    &telemetry,
                    &cfg,
                    genesis_id,
                    &mut dialed,
                    &mut dial_tokens,
                    &events_tx,
                );
                if quit {
                    break;
                }
            }
            None => {}
        }

        let now = now_ms(&start);
        if proto.next_wake().is_some_and(|wake| wake <= now) {
            proto.tick(now, &mut router);
        }
        if cfg.ping_interval_ms > 0 && now >= next_ping && !router.is_empty() {
            ping_nonce += 1;
            let ping = WireMsg::Ping {
                nonce: ping_nonce,
                sent_us: now_us(&start),
            };
            for id in router.peer_ids() {
                router.send_wire(id, &ping);
            }
            next_ping = now + cfg.ping_interval_ms;
        }
    }
    Ok(())
}

/// Handle one control-plane request; `true` means shut down.
#[allow(clippy::too_many_arguments)]
fn handle_control(
    msg: &WireMsg,
    reply: &SendQueue,
    proto: &mut NodeProtocol,
    learner: &mut Learner,
    router: &mut Router,
    telemetry: &lt_telemetry::Telemetry,
    cfg: &DaemonConfig,
    genesis_id: u64,
    dialed: &mut HashMap<usize, String>,
    dial_tokens: &mut u64,
    events_tx: &Sender<Event>,
) -> bool {
    let respond = |m: &WireMsg| {
        let frame = crate::frame::encode_frame(m);
        if !reply.push(frame) {
            telemetry.count("net.ctl_dropped", 1);
        }
    };
    match msg {
        WireMsg::Activate { slot } => {
            let outcome = {
                let _span = telemetry.span("net.activate_us");
                train_step(
                    proto.peer().replica(),
                    &mut learner.cache,
                    &learner.nodes[proto.id()],
                    proto.id(),
                    *slot,
                    &learner.scratch,
                    &learner.cfg,
                    Some(&mut learner.eval),
                    telemetry,
                )
            };
            let published = match outcome.publish {
                Some(p) => {
                    let parents = p
                        .parents
                        .iter()
                        .map(|id| proto.peer().content_id_of(*id))
                        .collect();
                    let msg = TxMessage::create(&p.params, parents, proto.id() as u64, *slot, 0);
                    proto.publish(msg, router);
                    telemetry.count("net.published", 1);
                    true
                }
                None => {
                    telemetry.count("net.discarded", 1);
                    false
                }
            };
            learner.last_slot = *slot;
            respond(&WireMsg::Activated {
                slot: *slot,
                published,
                len: proto.peer().len() as u32,
            });
        }
        WireMsg::StatusReq => {
            respond(&WireMsg::Status(StatusReport {
                len: proto.peer().len() as u32,
                orphans: proto.peer().orphan_count() as u32,
                missing: proto.peer().missing().len() as u32,
                connected: router.len() as u32,
                last_slot: learner.last_slot,
            }));
        }
        WireMsg::ArchiveReq => {
            respond(&WireMsg::Archive(proto.peer().export_messages()));
        }
        WireMsg::EvalReq { slot, eval_seed } => {
            let (loss, acc) = consensus_eval(
                proto.peer().replica(),
                &learner.nodes,
                &learner.scratch,
                &learner.cfg,
                *slot,
                *eval_seed,
            );
            respond(&WireMsg::Eval {
                loss_bits: loss.to_bits(),
                acc_bits: acc.to_bits(),
            });
        }
        WireMsg::MetricsReq => {
            let (counters, histograms) = match telemetry.metrics_snapshot() {
                Some(snap) => (
                    snap.counters.into_iter().collect(),
                    snap.histograms
                        .into_iter()
                        .map(|(name, h)| (name, h.count, h.sum))
                        .collect(),
                ),
                None => (Vec::new(), Vec::new()),
            };
            respond(&WireMsg::Metrics {
                counters,
                histograms,
            });
        }
        WireMsg::Connect { peers } => {
            // dial every higher-id peer (one socket per unordered pair)
            for (pid, addr) in peers {
                let pid = *pid as usize;
                if pid <= cfg.id || pid >= cfg.nodes || dialed.contains_key(&pid) {
                    continue;
                }
                dialed.insert(pid, addr.clone());
                *dial_tokens += 2; // odd tokens for dialed connections
                let token_base = *dial_tokens | 1;
                let tx = events_tx.clone();
                let tel = telemetry.clone();
                let dial = Dial {
                    self_id: cfg.id,
                    peer: pid,
                    addr: addr.clone(),
                    genesis_id,
                    queue_cap: cfg.queue_cap,
                    token_base,
                };
                std::thread::spawn(move || dial_loop(dial, tx, tel));
            }
        }
        WireMsg::Ping { nonce, sent_us } => {
            respond(&WireMsg::Pong {
                nonce: *nonce,
                sent_us: *sent_us,
            });
        }
        WireMsg::Shutdown => return true,
        _ => {}
    }
    false
}
