//! The `lt-node` daemon: one gossip peer behind a TCP socket.
//!
//! Process layout:
//!
//! * the **protocol thread** (this module's main loop) owns the
//!   [`NodeProtocol`], the training state, and the [`Router`]; it is the
//!   only thread that mutates the replica, so no locking is needed on
//!   the hot path;
//! * one **reader thread** per connection parses frames and forwards
//!   them to the protocol thread over a channel (counting
//!   `net.frames_recv` / `net.bytes_recv` at the socket);
//! * one **writer thread** per connection drains that connection's
//!   bounded [`SendQueue`] (counting `net.frames_sent` /
//!   `net.bytes_sent` after each successful write);
//! * one **dialer thread** per higher-id peer keeps the outgoing
//!   connection alive, reconnecting with exponential backoff (counted
//!   under `net.reconnects`).
//!
//! Frames that cannot be handed to a writer are never silently lost:
//! a send to a peer with no live connection counts as `net.rejected`,
//! a send that overflows a bounded queue counts as `net.dropped`, and a
//! frame queued behind a socket that died mid-stream counts as
//! `net.conn_lost` — every queued frame ends up in exactly one of
//! `net.frames_sent` / `net.conn_lost`.
//!
//! Crash safety: with `--checkpoint <path>` the protocol thread
//! periodically persists an `LTND` envelope (last activated slot +
//! [`Peer::checkpoint_bytes`] + whole-file checksum) via atomic
//! tmp-and-rename writes; `--restore` rebuilds the replica from that
//! file at startup, falling back to an empty replica (repair refills
//! it) when the file is missing, truncated, or corrupt.
//!
//! On startup the daemon prints `LISTEN <addr>` on stdout — the contract
//! the [`crate::driver`] uses to find the ephemeral port.

use crate::frame::{fnv1a, read_frame, StatusReport, WireMsg, CONTROL_PEER};
use crate::preset::{Preset, ORPHAN_CAP};
use crate::protocol::NodeProtocol;
use crate::queue::SendQueue;
use learning_tangle::node::Node;
use learning_tangle::persist::PersistError;
use learning_tangle::{EvalCache, ScratchPool, SimConfig, DEFAULT_EVAL_CACHE_CAPACITY};
use rand::RngExt;
use std::collections::HashMap;
use std::fs;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};
use tangle_gossip::learn::{consensus_eval, train_step};
use tangle_gossip::{Peer, ProtocolMsg, Transport, TxMessage};
use tangle_ledger::{AnalysisCache, TxId};
use tinynn::rng::{derive, seeded, Rng};

/// Configuration of one daemon process.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// This daemon's peer id (also its training node id).
    pub id: usize,
    /// Cluster population (= dataset clients).
    pub nodes: usize,
    /// Shared experiment seed (see [`Preset`]).
    pub seed: u64,
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub listen: String,
    /// Bound on each connection's send queue, in frames.
    pub queue_cap: usize,
    /// Interval between liveness pings to each connected peer, in
    /// milliseconds (0 = off; keep off for deterministic frame counts).
    pub ping_interval_ms: u64,
    /// Where to persist crash-recovery checkpoints (None = off).
    pub checkpoint: Option<PathBuf>,
    /// Interval between periodic checkpoints, in milliseconds.
    pub checkpoint_every_ms: u64,
    /// Restore the replica from `checkpoint` at startup. A missing or
    /// invalid file is not fatal: the daemon starts from genesis and
    /// the repair protocol refills it.
    pub restore: bool,
}

impl DaemonConfig {
    /// Defaults for `id` of `nodes` peers at `seed`.
    pub fn new(id: usize, nodes: usize, seed: u64) -> Self {
        Self {
            id,
            nodes,
            seed,
            listen: "127.0.0.1:0".to_string(),
            queue_cap: 1024,
            ping_interval_ms: 0,
            checkpoint: None,
            checkpoint_every_ms: 250,
            restore: false,
        }
    }
}

/// Magic prefix of the daemon checkpoint envelope. The envelope wraps
/// the gossip-layer `LTCP` image with daemon-level state (the last
/// activated slot) and a whole-file checksum so a kill mid-write is
/// detected as corruption, never read as a shorter valid history.
pub const DAEMON_CKPT_MAGIC: &[u8; 4] = b"LTND";
/// Envelope version.
pub const DAEMON_CKPT_VERSION: u8 = 1;

/// Serialize a daemon checkpoint:
///
/// ```text
/// magic     b"LTND"  (4 bytes)
/// version   u8       (currently 1)
/// last_slot u64 LE   (last activated training slot)
/// inner_len u32 LE   (LTCP image byte count)
/// inner     bytes    (Peer::checkpoint_bytes)
/// check     u64 LE   (FNV-1a over all preceding bytes)
/// ```
pub fn daemon_checkpoint_bytes(peer: &Peer, last_slot: u64) -> Vec<u8> {
    let inner = peer.checkpoint_bytes();
    let mut out = Vec::with_capacity(4 + 1 + 8 + 4 + inner.len() + 8);
    out.extend_from_slice(DAEMON_CKPT_MAGIC);
    out.push(DAEMON_CKPT_VERSION);
    out.extend_from_slice(&last_slot.to_le_bytes());
    out.extend_from_slice(&(inner.len() as u32).to_le_bytes());
    out.extend_from_slice(&inner);
    let check = fnv1a(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// Parse and validate a daemon checkpoint produced by
/// [`daemon_checkpoint_bytes`]. Any truncation, bit flip, or version
/// skew fails closed with an error — never a panic, never a silently
/// shorter history.
pub fn decode_daemon_checkpoint(
    id: usize,
    b: &[u8],
    pow_difficulty: u32,
    orphan_cap: usize,
) -> Result<(Peer, u64), PersistError> {
    const HEADER: usize = 4 + 1 + 8 + 4;
    if b.len() < HEADER + 8 || &b[..4] != DAEMON_CKPT_MAGIC {
        return Err(PersistError::Malformed("bad daemon checkpoint header"));
    }
    if b[4] != DAEMON_CKPT_VERSION {
        return Err(PersistError::Malformed(
            "unsupported daemon checkpoint version",
        ));
    }
    let last_slot = u64::from_le_bytes(b[5..13].try_into().expect("8 bytes"));
    let inner_len = u32::from_le_bytes(b[13..17].try_into().expect("4 bytes")) as usize;
    let Some(body_end) = HEADER.checked_add(inner_len) else {
        return Err(PersistError::Malformed("implausible checkpoint length"));
    };
    if b.len() != body_end + 8 {
        return Err(PersistError::Malformed("daemon checkpoint length mismatch"));
    }
    let check = u64::from_le_bytes(b[body_end..].try_into().expect("8 bytes"));
    if fnv1a(&b[..body_end]) != check {
        return Err(PersistError::Malformed(
            "daemon checkpoint checksum mismatch",
        ));
    }
    let peer = Peer::from_checkpoint(id, &b[HEADER..body_end], pow_difficulty, orphan_cap)?;
    Ok((peer, last_slot))
}

/// Crash-safe checkpoint write: the bytes land in `<path>.tmp` first and
/// are renamed into place, so a SIGKILL mid-write leaves either the old
/// complete checkpoint or a stray tmp file — never a torn `<path>`.
pub fn write_checkpoint_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("ltnd.tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Load and validate a checkpoint file for daemon `id`, additionally
/// checking the restored genesis against the preset's — a checkpoint
/// from a different experiment must not be served as this ledger.
pub fn load_checkpoint(
    path: &Path,
    id: usize,
    genesis: &TxMessage,
) -> Result<(Peer, u64), PersistError> {
    let bytes =
        fs::read(path).map_err(|_| PersistError::Malformed("unreadable checkpoint file"))?;
    let (peer, slot) = decode_daemon_checkpoint(id, &bytes, 0, ORPHAN_CAP)?;
    if peer.content_id_of(TxId(0)) != genesis.content_id() {
        return Err(PersistError::Malformed(
            "checkpoint from a different genesis",
        ));
    }
    Ok((peer, slot))
}

/// Routes outbound frames to per-connection send queues. The daemon's
/// [`Transport`]: a gossip send becomes an encoded frame on the target
/// connection's bounded queue.
pub struct Router {
    queues: HashMap<usize, (u64, SendQueue)>,
    telemetry: lt_telemetry::Telemetry,
}

impl Router {
    /// An empty router counting into `telemetry`.
    pub fn new(telemetry: lt_telemetry::Telemetry) -> Self {
        Self {
            queues: HashMap::new(),
            telemetry,
        }
    }

    /// Register the live connection `token` to `peer`.
    pub fn attach(&mut self, peer: usize, token: u64, queue: SendQueue) {
        self.queues.insert(peer, (token, queue));
    }

    /// Drop the connection to `peer`, but only if `token` still names the
    /// current one (a reconnect may already have replaced it).
    pub fn detach(&mut self, peer: usize, token: u64) {
        if self.queues.get(&peer).is_some_and(|(t, _)| *t == token) {
            self.queues.remove(&peer);
        }
    }

    /// Currently connected peer ids, ascending.
    pub fn peer_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.queues.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Live connection count.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// No live connections?
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Enqueue one frame for `to`. `false` — with the loss accounted
    /// under `net.rejected` (peer down) or `net.dropped` (queue
    /// overflow) — when the frame will not reach the wire.
    pub fn send_wire(&mut self, to: usize, msg: &WireMsg) -> bool {
        let Some((_, q)) = self.queues.get(&to) else {
            self.telemetry.count("net.rejected", 1);
            return false;
        };
        if q.push(crate::frame::encode_frame(msg)) {
            true
        } else {
            self.telemetry.count("net.dropped", 1);
            false
        }
    }
}

impl Transport for Router {
    fn send(&mut self, _from: usize, to: usize, msg: ProtocolMsg) -> bool {
        self.send_wire(to, &WireMsg::from_protocol(msg))
    }
}

enum Event {
    /// A data connection to `peer` came up.
    PeerUp {
        peer: usize,
        token: u64,
        queue: SendQueue,
    },
    /// The data connection `token` to `peer` went down.
    PeerDown { peer: usize, token: u64 },
    /// A frame arrived from data peer `from`.
    Peer { from: usize, msg: WireMsg },
    /// A frame arrived on a control connection; replies go to `reply`.
    Control { reply: SendQueue, msg: WireMsg },
}

/// Socket-level counter names for one direction of a connection class.
/// Data connections (peer gossip) and control connections (the harness)
/// are accounted separately so daemon-to-daemon totals stay symmetric:
/// after quiescence, the data frames one daemon sent are exactly the
/// data frames its peers received.
#[derive(Clone, Copy)]
struct WireCounters {
    frames_sent: &'static str,
    bytes_sent: &'static str,
    frames_recv: &'static str,
    bytes_recv: &'static str,
    conn_lost: &'static str,
}

const DATA_COUNTERS: WireCounters = WireCounters {
    frames_sent: "net.frames_sent",
    bytes_sent: "net.bytes_sent",
    frames_recv: "net.frames_recv",
    bytes_recv: "net.bytes_recv",
    conn_lost: "net.conn_lost",
};

const CTL_COUNTERS: WireCounters = WireCounters {
    frames_sent: "net.ctl_frames_sent",
    bytes_sent: "net.ctl_bytes_sent",
    frames_recv: "net.ctl_frames_recv",
    bytes_recv: "net.ctl_bytes_recv",
    conn_lost: "net.ctl_conn_lost",
};

/// Spawn the writer thread draining `queue` into `stream`. Once a write
/// fails the socket is dead, but the queue keeps accepting pushes until
/// the reader side notices and closes it — those frames were accepted
/// for delivery and then lost to the partition, so the writer keeps
/// draining and counts each one under `conn_lost` (distinct from
/// `net.dropped`, which is queue overflow on a *live* connection).
/// Every frame popped here is counted exactly once: `frames_sent` on a
/// successful write, `conn_lost` after the socket died.
fn spawn_writer(
    stream: TcpStream,
    queue: SendQueue,
    telemetry: lt_telemetry::Telemetry,
    counters: WireCounters,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut w = BufWriter::new(stream);
        let mut dead = false;
        while let Some(frame) = queue.pop() {
            if !dead {
                if w.write_all(&frame).and_then(|_| w.flush()).is_ok() {
                    telemetry.count(counters.frames_sent, 1);
                    telemetry.count(counters.bytes_sent, frame.len() as u64);
                    continue;
                }
                dead = true;
            }
            telemetry.count(counters.conn_lost, 1);
        }
    })
}

/// The connection writer thread with data-plane counters, exposed so
/// ground-truth telemetry tests can drive a writer against a real dead
/// socket and check the `frames_sent + conn_lost = pushed` ledger.
pub fn spawn_data_writer(
    stream: TcpStream,
    queue: SendQueue,
    telemetry: lt_telemetry::Telemetry,
) -> std::thread::JoinHandle<()> {
    spawn_writer(stream, queue, telemetry, DATA_COUNTERS)
}

/// Read frames from `r` until EOF or error, counting socket-level
/// receive totals and handing each message to `deliver` (which returns
/// `false` once the protocol thread is gone).
fn read_loop(
    r: &mut impl std::io::Read,
    telemetry: &lt_telemetry::Telemetry,
    counters: WireCounters,
    mut deliver: impl FnMut(WireMsg) -> bool,
) {
    loop {
        match read_frame(r) {
            Ok(Some((msg, bytes))) => {
                telemetry.count(counters.frames_recv, 1);
                telemetry.count(counters.bytes_recv, bytes as u64);
                if !deliver(msg) {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                telemetry.count("net.recv_errors", 1);
                return;
            }
        }
    }
}

/// Handle one freshly accepted connection: classify by its `Hello`,
/// register it, and pump its frames into the protocol thread.
#[allow(clippy::too_many_arguments)]
fn serve_conn(
    stream: TcpStream,
    genesis_id: u64,
    queue_cap: usize,
    token: u64,
    events: Sender<Event>,
    telemetry: lt_telemetry::Telemetry,
) {
    let write_half = stream.try_clone().expect("clone accepted socket");
    // ONE buffered reader for the connection's whole life: bytes past the
    // Hello may already sit in its buffer.
    let mut r = BufReader::new(stream);
    let (hello, hello_bytes) = match read_frame(&mut r) {
        Ok(Some((WireMsg::Hello { peer, genesis }, bytes))) => {
            if genesis != genesis_id {
                // refuse to gossip across different ledgers
                return;
            }
            (peer, bytes)
        }
        _ => return,
    };
    let counters = if hello == CONTROL_PEER {
        CTL_COUNTERS
    } else {
        DATA_COUNTERS
    };
    telemetry.count(counters.frames_recv, 1);
    telemetry.count(counters.bytes_recv, hello_bytes as u64);
    let queue = SendQueue::new(queue_cap);
    let writer = spawn_writer(write_half, queue.clone(), telemetry.clone(), counters);
    if hello == CONTROL_PEER {
        read_loop(&mut r, &telemetry, counters, |msg| {
            events
                .send(Event::Control {
                    reply: queue.clone(),
                    msg,
                })
                .is_ok()
        });
    } else {
        let peer = hello as usize;
        if events
            .send(Event::PeerUp {
                peer,
                token,
                queue: queue.clone(),
            })
            .is_err()
        {
            queue.close();
            return;
        }
        read_loop(&mut r, &telemetry, counters, |msg| {
            events.send(Event::Peer { from: peer, msg }).is_ok()
        });
        let _ = events.send(Event::PeerDown { peer, token });
    }
    queue.close();
    let _ = writer.join();
}

/// Everything a dialer thread needs to know about one outgoing link.
struct Dial {
    self_id: usize,
    peer: usize,
    addr: String,
    genesis_id: u64,
    queue_cap: usize,
    token_base: u64,
    /// Experiment seed; each dialer derives its own jitter stream.
    seed: u64,
}

/// Reconnect backoff floor, in milliseconds.
pub const BACKOFF_BASE_MS: u64 = 25;
/// Reconnect backoff ceiling, in milliseconds.
pub const BACKOFF_CAP_MS: u64 = 1600;

/// Decorrelated-jitter reconnect backoff: the next sleep is drawn
/// uniformly from `[base, min(cap, prev * 3)]`. Expected growth stays
/// exponential, but dialers that watched the same partition heal wake
/// at *different* times — pure exponential backoff (the previous
/// scheme) synchronizes every dialer in the cluster onto the same
/// schedule and slams a healed peer with a thundering herd of
/// simultaneous redials.
pub fn decorrelated_backoff(prev_ms: u64, rng: &mut Rng) -> u64 {
    let hi = prev_ms
        .saturating_mul(3)
        .clamp(BACKOFF_BASE_MS, BACKOFF_CAP_MS);
    rng.random_range(BACKOFF_BASE_MS..=hi)
}

/// Keep the outgoing connection to `peer` alive: dial, handshake,
/// register, pump inbound frames; on failure back off with decorrelated
/// jitter and redial (counted under `net.reconnects`). Gives up once
/// the protocol thread is gone.
fn dial_loop(dial: Dial, events: Sender<Event>, telemetry: lt_telemetry::Telemetry) {
    let Dial {
        self_id,
        peer,
        addr,
        genesis_id,
        queue_cap,
        token_base,
        seed,
    } = dial;
    let link = ((self_id as u64) << 32) | peer as u64;
    let mut rng = seeded(derive(derive(seed, 0x0BAC_00FF), link));
    let mut backoff_ms = BACKOFF_BASE_MS;
    let mut conn_seq: u64 = 0;
    loop {
        if let Ok(stream) = TcpStream::connect(&addr) {
            let _ = stream.set_nodelay(true);
            let hello = crate::frame::encode_frame(&WireMsg::Hello {
                peer: self_id as u64,
                genesis: genesis_id,
            });
            let mut write_half = stream.try_clone().expect("clone dialed socket");
            if write_half.write_all(&hello).is_ok() {
                telemetry.count("net.frames_sent", 1);
                telemetry.count("net.bytes_sent", hello.len() as u64);
                backoff_ms = BACKOFF_BASE_MS;
                conn_seq += 1;
                // distinct odd token per connection incarnation
                let token = token_base + (conn_seq << 32);
                let queue = SendQueue::new(queue_cap);
                let writer =
                    spawn_writer(write_half, queue.clone(), telemetry.clone(), DATA_COUNTERS);
                if events
                    .send(Event::PeerUp {
                        peer,
                        token,
                        queue: queue.clone(),
                    })
                    .is_err()
                {
                    queue.close();
                    return;
                }
                let mut r = BufReader::new(stream);
                read_loop(&mut r, &telemetry, DATA_COUNTERS, |msg| {
                    events.send(Event::Peer { from: peer, msg }).is_ok()
                });
                queue.close();
                let _ = writer.join();
                if events.send(Event::PeerDown { peer, token }).is_err() {
                    return;
                }
            }
        }
        // the connection failed or died: reconnect with backoff
        telemetry.count("net.reconnects", 1);
        backoff_ms = decorrelated_backoff(backoff_ms, &mut rng);
        std::thread::sleep(Duration::from_millis(backoff_ms));
        // cheap liveness probe: a detach for a token that was never
        // attached is a no-op, but a closed channel ends the dialer
        if events
            .send(Event::PeerDown {
                peer,
                token: token_base,
            })
            .is_err()
        {
            return;
        }
    }
}

/// Per-daemon training state: the full (deterministically regenerated)
/// node population, of which this daemon trains as node `id`.
struct Learner {
    nodes: Vec<Node>,
    cache: AnalysisCache,
    eval: EvalCache,
    scratch: ScratchPool<'static>,
    cfg: SimConfig,
    last_slot: u64,
}

/// Run the daemon until a `Shutdown` control frame arrives. Blocks the
/// calling thread; this is the whole life of an `lt-node` process.
pub fn run_daemon(cfg: DaemonConfig) -> std::io::Result<()> {
    assert!(cfg.id < cfg.nodes, "daemon id out of range");
    let preset = Preset {
        nodes: cfg.nodes,
        seed: cfg.seed,
    };
    let genesis = preset.genesis();
    let genesis_id = genesis.content_id().0;
    let telemetry = lt_telemetry::Telemetry::new(lt_telemetry::MemorySink::new());

    let mut restored_slot = 0u64;
    let mut proto = NodeProtocol::new(cfg.id, &genesis, 0, ORPHAN_CAP);
    if cfg.restore {
        if let Some(path) = cfg.checkpoint.as_deref() {
            match load_checkpoint(path, cfg.id, &genesis) {
                Ok((peer, slot)) => {
                    telemetry.count("net.restores", 1);
                    telemetry.count("net.restored_len", peer.len() as u64);
                    restored_slot = slot;
                    proto = NodeProtocol::from_peer(peer);
                }
                Err(_) => {
                    // fail open: start from genesis, let repair refill
                    telemetry.count("net.restore_failed", 1);
                }
            }
        }
    }
    proto.set_telemetry(telemetry.clone());
    proto.set_repair(Preset::repair_cfg());
    let mut learner = Learner {
        nodes: preset.population(),
        cache: AnalysisCache::new(proto.peer().replica()),
        eval: EvalCache::new(DEFAULT_EVAL_CACHE_CAPACITY),
        scratch: ScratchPool::new(Box::new(Preset::build)),
        cfg: preset.sim_cfg(),
        last_slot: restored_slot,
    };
    let mut router = Router::new(telemetry.clone());

    let listener = TcpListener::bind(&cfg.listen)?;
    let addr = listener.local_addr()?;
    // the spawn contract: the driver parses this line for the port
    println!("LISTEN {addr}");
    std::io::stdout().flush()?;

    let (events_tx, events_rx): (Sender<Event>, Receiver<Event>) = mpsc::channel();
    {
        let tx = events_tx.clone();
        let tel = telemetry.clone();
        let queue_cap = cfg.queue_cap;
        std::thread::spawn(move || {
            for (i, stream) in listener.incoming().enumerate() {
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let tx = tx.clone();
                let tel = tel.clone();
                // even tokens for accepted connections, odd for dialed
                let token = (i as u64) << 1;
                std::thread::spawn(move || {
                    serve_conn(stream, genesis_id, queue_cap, token, tx, tel)
                });
            }
        });
    }

    let start = Instant::now();
    let now_ms = |start: &Instant| start.elapsed().as_millis() as u64;
    let now_us = |start: &Instant| start.elapsed().as_micros() as u64;
    let mut dialed: HashMap<usize, String> = HashMap::new();
    let mut dial_tokens: u64 = 1;
    let mut next_ping = u64::MAX;
    let mut ping_nonce: u64 = 0;
    let ckpt_every = match &cfg.checkpoint {
        Some(_) if cfg.checkpoint_every_ms > 0 => cfg.checkpoint_every_ms,
        _ => 0,
    };
    let mut next_ckpt = if ckpt_every > 0 { ckpt_every } else { u64::MAX };
    // (len, last_slot) at the last write: skip checkpoints with no news
    let mut ckpt_state = (proto.peer().len(), restored_slot);

    loop {
        let now = now_ms(&start);
        let mut deadline = now + 50;
        if let Some(wake) = proto.next_wake() {
            deadline = deadline.min(wake.max(now));
        }
        deadline = deadline.min(next_ping.max(now));
        deadline = deadline.min(next_ckpt.max(now));
        let event = match events_rx.recv_timeout(Duration::from_millis(deadline - now)) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let now = now_ms(&start);
        proto.set_now(now);

        match event {
            Some(Event::PeerUp { peer, token, queue }) => {
                router.attach(peer, token, queue);
                proto.set_neighbours(router.peer_ids());
                // pull whatever the newly reachable peer has that we lack
                let heads = proto.peer().heads();
                router.send_wire(peer, &WireMsg::Advertise { heads });
                if cfg.ping_interval_ms > 0 && next_ping == u64::MAX {
                    next_ping = now + cfg.ping_interval_ms;
                }
            }
            Some(Event::PeerDown { peer, token }) => {
                router.detach(peer, token);
                proto.set_neighbours(router.peer_ids());
            }
            Some(Event::Peer { from, msg }) => match msg {
                WireMsg::Ping { nonce, sent_us } => {
                    router.send_wire(from, &WireMsg::Pong { nonce, sent_us });
                }
                WireMsg::Pong { sent_us, .. } => {
                    telemetry.record("net.rtt_us", now_us(&start).saturating_sub(sent_us));
                }
                other => {
                    if let Some(pm) = other.into_protocol() {
                        proto.on_message(from, pm, &mut router);
                    }
                }
            },
            Some(Event::Control { reply, msg }) => {
                let quit = handle_control(
                    &msg,
                    &reply,
                    &mut proto,
                    &mut learner,
                    &mut router,
                    &telemetry,
                    &cfg,
                    genesis_id,
                    &mut dialed,
                    &mut dial_tokens,
                    &events_tx,
                );
                if quit {
                    if let Some(path) = cfg.checkpoint.as_deref() {
                        save_checkpoint(path, &proto, learner.last_slot, &telemetry);
                    }
                    break;
                }
            }
            None => {}
        }

        let now = now_ms(&start);
        if proto.next_wake().is_some_and(|wake| wake <= now) {
            proto.tick(now, &mut router);
        }
        if cfg.ping_interval_ms > 0 && now >= next_ping && !router.is_empty() {
            ping_nonce += 1;
            let ping = WireMsg::Ping {
                nonce: ping_nonce,
                sent_us: now_us(&start),
            };
            for id in router.peer_ids() {
                router.send_wire(id, &ping);
            }
            next_ping = now + cfg.ping_interval_ms;
        }
        if ckpt_every > 0 && now >= next_ckpt {
            let state = (proto.peer().len(), learner.last_slot);
            if state != ckpt_state {
                let path = cfg.checkpoint.as_deref().expect("ckpt_every implies path");
                if save_checkpoint(path, &proto, learner.last_slot, &telemetry) {
                    ckpt_state = state;
                }
            }
            next_ckpt = now + ckpt_every;
        }
    }
    Ok(())
}

/// Persist the current replica; `true` on success. Failures are
/// counted, not fatal: a daemon that cannot checkpoint still gossips,
/// it just restores from an older prefix after a crash.
fn save_checkpoint(
    path: &Path,
    proto: &NodeProtocol,
    last_slot: u64,
    telemetry: &lt_telemetry::Telemetry,
) -> bool {
    let bytes = daemon_checkpoint_bytes(proto.peer(), last_slot);
    match write_checkpoint_atomic(path, &bytes) {
        Ok(()) => {
            telemetry.count("net.checkpoints", 1);
            true
        }
        Err(_) => {
            telemetry.count("net.checkpoint_errors", 1);
            false
        }
    }
}

/// Handle one control-plane request; `true` means shut down.
#[allow(clippy::too_many_arguments)]
fn handle_control(
    msg: &WireMsg,
    reply: &SendQueue,
    proto: &mut NodeProtocol,
    learner: &mut Learner,
    router: &mut Router,
    telemetry: &lt_telemetry::Telemetry,
    cfg: &DaemonConfig,
    genesis_id: u64,
    dialed: &mut HashMap<usize, String>,
    dial_tokens: &mut u64,
    events_tx: &Sender<Event>,
) -> bool {
    let respond = |m: &WireMsg| {
        let frame = crate::frame::encode_frame(m);
        if !reply.push(frame) {
            telemetry.count("net.ctl_dropped", 1);
        }
    };
    match msg {
        WireMsg::Activate { slot } => {
            let outcome = {
                let _span = telemetry.span("net.activate_us");
                train_step(
                    proto.peer().replica(),
                    &mut learner.cache,
                    &learner.nodes[proto.id()],
                    proto.id(),
                    *slot,
                    &learner.scratch,
                    &learner.cfg,
                    Some(&mut learner.eval),
                    telemetry,
                )
            };
            let published = match outcome.publish {
                Some(p) => {
                    let parents = p
                        .parents
                        .iter()
                        .map(|id| proto.peer().content_id_of(*id))
                        .collect();
                    let msg = TxMessage::create(&p.params, parents, proto.id() as u64, *slot, 0);
                    proto.publish(msg, router);
                    telemetry.count("net.published", 1);
                    true
                }
                None => {
                    telemetry.count("net.discarded", 1);
                    false
                }
            };
            learner.last_slot = *slot;
            respond(&WireMsg::Activated {
                slot: *slot,
                published,
                len: proto.peer().len() as u32,
            });
        }
        WireMsg::StatusReq => {
            respond(&WireMsg::Status(StatusReport {
                len: proto.peer().len() as u32,
                orphans: proto.peer().orphan_count() as u32,
                missing: proto.peer().missing().len() as u32,
                connected: router.len() as u32,
                last_slot: learner.last_slot,
            }));
        }
        WireMsg::ArchiveReq => {
            respond(&WireMsg::Archive(proto.peer().export_messages()));
        }
        WireMsg::EvalReq { slot, eval_seed } => {
            let (loss, acc) = consensus_eval(
                proto.peer().replica(),
                &learner.nodes,
                &learner.scratch,
                &learner.cfg,
                *slot,
                *eval_seed,
            );
            respond(&WireMsg::Eval {
                loss_bits: loss.to_bits(),
                acc_bits: acc.to_bits(),
            });
        }
        WireMsg::MetricsReq => {
            let (counters, histograms) = match telemetry.metrics_snapshot() {
                Some(snap) => (
                    snap.counters.into_iter().collect(),
                    snap.histograms
                        .into_iter()
                        .map(|(name, h)| (name, h.count, h.sum))
                        .collect(),
                ),
                None => (Vec::new(), Vec::new()),
            };
            respond(&WireMsg::Metrics {
                counters,
                histograms,
            });
        }
        WireMsg::Connect { peers } => {
            // dial every higher-id peer (one socket per unordered pair)
            for (pid, addr) in peers {
                let pid = *pid as usize;
                if pid <= cfg.id || pid >= cfg.nodes || dialed.contains_key(&pid) {
                    continue;
                }
                dialed.insert(pid, addr.clone());
                *dial_tokens += 2; // odd tokens for dialed connections
                let token_base = *dial_tokens | 1;
                let tx = events_tx.clone();
                let tel = telemetry.clone();
                let dial = Dial {
                    self_id: cfg.id,
                    peer: pid,
                    addr: addr.clone(),
                    genesis_id,
                    queue_cap: cfg.queue_cap,
                    token_base,
                    seed: cfg.seed,
                };
                std::thread::spawn(move || dial_loop(dial, tx, tel));
            }
        }
        WireMsg::Ping { nonce, sent_us } => {
            respond(&WireMsg::Pong {
                nonce: *nonce,
                sent_us: *sent_us,
            });
        }
        WireMsg::Shutdown => return true,
        _ => {}
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decorrelated_backoff_stays_in_bounds_and_decorrelates() {
        let mut rng = seeded(7);
        let mut prev = BACKOFF_BASE_MS;
        for _ in 0..200 {
            let next = decorrelated_backoff(prev, &mut rng);
            assert!((BACKOFF_BASE_MS..=BACKOFF_CAP_MS).contains(&next));
            assert!(next <= prev.saturating_mul(3).max(BACKOFF_BASE_MS));
            prev = next;
        }
        // two dialers over the same link seed draw identical streams...
        let mut a = seeded(derive(derive(1, 0x0BAC_00FF), 5));
        let mut b = seeded(derive(derive(1, 0x0BAC_00FF), 5));
        assert_eq!(
            decorrelated_backoff(400, &mut a),
            decorrelated_backoff(400, &mut b)
        );
        // ...but different links desynchronize (the thundering-herd fix)
        let mut c = seeded(derive(derive(1, 0x0BAC_00FF), 6));
        let xs: Vec<u64> = (0..8).map(|_| decorrelated_backoff(400, &mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| decorrelated_backoff(400, &mut c)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn daemon_checkpoint_roundtrips_and_rejects_damage() {
        let preset = Preset { nodes: 3, seed: 9 };
        let genesis = preset.genesis();
        let peer = Peer::new(1, &genesis, 0).with_orphan_cap(ORPHAN_CAP);
        let bytes = daemon_checkpoint_bytes(&peer, 42);
        let (back, slot) = decode_daemon_checkpoint(1, &bytes, 0, ORPHAN_CAP).unwrap();
        assert_eq!(slot, 42);
        assert_eq!(back.len(), peer.len());
        assert_eq!(back.content_id_of(TxId(0)), genesis.content_id());
        // any truncation fails closed
        for cut in [0, 1, 4, 12, bytes.len() - 1] {
            assert!(decode_daemon_checkpoint(1, &bytes[..cut], 0, ORPHAN_CAP).is_err());
        }
        // any single bit flip fails the whole-file checksum (or a
        // deeper validation layer)
        for pos in [0, 4, 5, 9, 16, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode_daemon_checkpoint(1, &bad, 0, ORPHAN_CAP).is_err());
        }
    }

    #[test]
    fn load_checkpoint_rejects_foreign_genesis() {
        let dir = std::env::temp_dir().join(format!("ltnd-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.ltnd");
        let preset = Preset { nodes: 3, seed: 9 };
        // the preset genesis is seed-invariant, so a truly foreign
        // ledger needs a different genesis nonce
        let foreign = TxMessage::create(
            &tinynn::ParamVec::from_model(&Preset::build()),
            vec![],
            u64::MAX,
            0,
            1,
        );
        assert_ne!(foreign.content_id(), preset.genesis().content_id());
        let peer = Peer::new(1, &foreign, 0).with_orphan_cap(ORPHAN_CAP);
        write_checkpoint_atomic(&path, &daemon_checkpoint_bytes(&peer, 1)).unwrap();
        assert!(load_checkpoint(&path, 1, &foreign).is_ok());
        assert!(load_checkpoint(&path, 1, &preset.genesis()).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
