//! The shared cross-process experiment preset.
//!
//! A multi-process differential run has no shared memory: every daemon —
//! and every in-process oracle it is compared against — must reconstruct
//! the *same* dataset, model initialization, simulation config, and
//! genesis transaction from nothing but `(nodes, seed)`. This module is
//! that reconstruction, mirroring the `lt-conformance` preset (same
//! blobs parameters, same MLP, same hyperparameters) so the conformance
//! invariant checkers apply to networked runs unchanged.

use feddata::blobs::{self, BlobsConfig};
use feddata::FederatedDataset;
use learning_tangle::{Node, SimConfig, TangleHyperParams};
use tangle_gossip::{RepairConfig, TxMessage};
use tinynn::rng::{derive, seeded};
use tinynn::{ParamVec, Sequential};

/// Orphan cap used by networked runs (matches the conformance preset:
/// small enough that the cap invariant actually bites).
pub const ORPHAN_CAP: usize = 16;

/// A fully specified cross-process experiment.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Population size (= daemon count = dataset clients).
    pub nodes: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
}

impl Preset {
    /// The federated dataset every executor regenerates.
    pub fn dataset(&self) -> FederatedDataset {
        blobs::generate(
            &BlobsConfig {
                users: self.nodes,
                samples_per_user: (18, 24),
                noise_std: 0.6,
                ..BlobsConfig::default()
            },
            derive(self.seed, 0xDA7A),
        )
    }

    /// The shared model architecture and initialization.
    pub fn build() -> Sequential {
        tinynn::zoo::mlp(8, &[10], 4, &mut seeded(5))
    }

    /// The simulation configuration (identical to the conformance one).
    pub fn sim_cfg(&self) -> SimConfig {
        SimConfig {
            nodes_per_round: 3,
            lr: 0.2,
            local_epochs: 1,
            batch_size: 8,
            train_chunks: 1,
            train_parallel: true,
            eval_fraction: 0.5,
            seed: self.seed,
            hyper: TangleHyperParams {
                confidence_samples: 4,
                sample_size: 4,
                ..TangleHyperParams::basic()
            },
            network: None,
        }
    }

    /// The genesis transaction: one fresh model initialization, exactly
    /// as [`tangle_gossip::learn::GossipLearning`] creates it, so
    /// content ids agree across every executor.
    pub fn genesis(&self) -> TxMessage {
        TxMessage::create(
            &ParamVec::from_model(&Self::build()),
            vec![],
            u64::MAX,
            0,
            0,
        )
    }

    /// Repair timing for real daemons. The protocol default counts in
    /// simulator ticks (delay 8, backoff base 8); a daemon's clock is
    /// wall milliseconds, so those values would re-request orphan
    /// parents almost instantly. These are the same shape on an
    /// ms-scale: first re-request after 25ms, backoff base 25ms, the
    /// protocol's shared retry cap.
    pub fn repair_cfg() -> RepairConfig {
        RepairConfig {
            enabled: true,
            delay: 25,
            backoff_base: 25,
            max_retries: 6,
        }
    }

    /// The honest node population over [`Preset::dataset`].
    pub fn population(&self) -> Vec<Node> {
        self.dataset()
            .clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| Node::honest(i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_deterministic() {
        let a = Preset { nodes: 3, seed: 7 };
        let b = Preset { nodes: 3, seed: 7 };
        assert_eq!(a.genesis().content_id(), b.genesis().content_id());
        let da = a.dataset();
        let db = b.dataset();
        assert_eq!(da.num_clients(), 3);
        assert_eq!(da.clients[0].train_len(), db.clients[0].train_len());
    }

    #[test]
    fn different_seed_different_genesis_payloadless_fields_only() {
        // The genesis carries the model init (seeded independently of the
        // experiment seed), so its content id is seed-invariant — what
        // varies per seed is the dataset and training randomness.
        let a = Preset { nodes: 3, seed: 7 };
        let b = Preset { nodes: 3, seed: 8 };
        assert_eq!(a.genesis().content_id(), b.genesis().content_id());
    }
}
