//! Long-haul soak runs: a daemon cluster under rolling chaos.
//!
//! A soak run drives steady publish traffic into a cluster whose links
//! and processes are being actively damaged by a [`ChaosPlan`] — the
//! real-socket analogue of the churn experiment. When the schedule ends
//! the cluster is healed ([`crate::driver::Supervisor::heal`]) and the
//! run asserts *reconvergence through the repair protocol*:
//!
//! 1. every daemon settles on the same replica length with no orphans
//!    and nothing missing, stable across consecutive polls;
//! 2. the repair machinery goes quiescent (`net.rerequests` stops
//!    growing) — bounded repair, not a runaway re-request loop;
//! 3. final archives byte-agree across daemons as *sets* (insertion
//!    order may differ per daemon under concurrent gossip).
//!
//! Ledger-invariant checking on replicas rebuilt from those archives is
//! the caller's job (`lt-experiments net --soak-secs` wires in
//! `lt_conformance::check_ledger_invariants`), keeping `lt-net` free of
//! a conformance dependency.

use crate::chaos::ChaosPlan;
use crate::driver::{Cluster, ClusterOptions, Supervisor};
use crate::preset::Preset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tangle_gossip::TxMessage;

/// Parameters of one soak run.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Daemon count.
    pub nodes: usize,
    /// Preset seed (dataset/model/genesis).
    pub seed: u64,
    /// How long to drive traffic under chaos, ms.
    pub duration_ms: u64,
    /// The fault schedule (see [`ChaosPlan::rolling`]).
    pub chaos: ChaosPlan,
    /// Directory for per-daemon checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Daemon checkpoint cadence, ms.
    pub checkpoint_every_ms: u64,
    /// Pause between activations, ms (paces publish traffic so the
    /// run exercises repair, not just raw throughput).
    pub activation_gap_ms: u64,
    /// How long reconvergence may take after the heal, ms.
    pub converge_timeout_ms: u64,
}

impl SoakConfig {
    /// A `nodes`-daemon soak of `duration_ms` under a rolling schedule
    /// seeded by `chaos_seed`, checkpointing into `checkpoint_dir`.
    pub fn new(nodes: usize, seed: u64, duration_ms: u64, chaos_seed: u64, dir: &Path) -> Self {
        Self {
            nodes,
            seed,
            duration_ms,
            chaos: ChaosPlan::rolling(nodes, duration_ms, chaos_seed),
            checkpoint_dir: dir.to_path_buf(),
            checkpoint_every_ms: 100,
            activation_gap_ms: 40,
            converge_timeout_ms: 30_000,
        }
    }
}

/// Everything a soak run measured, serializable as `results/soak.json`.
/// The embedded [`ChaosPlan`] makes the run replayable: feed it back
/// through the same seed and the same schedule unfolds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SoakReport {
    /// Daemon count.
    pub nodes: u64,
    /// Preset seed.
    pub seed: u64,
    /// Driving phase length, ms.
    pub duration_ms: u64,
    /// Activations attempted (includes ones skipped on dead daemons).
    pub activations: u64,
    /// Activations that published a transaction.
    pub published: u64,
    /// Activations skipped because the target daemon was killed.
    pub skipped_down: u64,
    /// SIGKILLs executed by the supervisor.
    pub kills: u64,
    /// Respawns executed by the supervisor.
    pub respawns: u64,
    /// Did every daemon reach the same stable, fully-solid length?
    pub converged: bool,
    /// Wall-clock the reconvergence took after the heal, ms.
    pub converge_ms: u64,
    /// The common final replica length (genesis included).
    pub final_len: u64,
    /// Did `net.rerequests` stop growing after convergence?
    pub repair_quiescent: bool,
    /// Sum of `net.rerequests` over all daemons at the end.
    pub rerequests: u64,
    /// Do the final archives byte-agree across daemons (as sets)?
    pub archives_agree: bool,
    /// Whole-cluster counter totals (every `net.*` counter summed).
    pub counters: BTreeMap<String, u64>,
    /// The schedule this run executed — the replay artifact.
    pub plan: ChaosPlan,
}

impl SoakReport {
    /// Serialize for `results/soak.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SoakReport is always serializable")
    }
}

/// Run one soak. Returns the report plus each daemon's final archive
/// (insertion order, genesis excluded) so callers can rebuild replicas
/// and run invariant checks. The cluster is shut down before returning.
pub fn run_soak(bin: &Path, cfg: &SoakConfig) -> io::Result<(SoakReport, Vec<Vec<TxMessage>>)> {
    std::fs::create_dir_all(&cfg.checkpoint_dir)?;
    let mut opts = ClusterOptions::new(cfg.nodes, cfg.seed);
    opts.checkpoint_dir = Some(cfg.checkpoint_dir.clone());
    opts.checkpoint_every_ms = cfg.checkpoint_every_ms;
    opts.chaos = Some(cfg.chaos.clone());
    let mut cluster = Cluster::spawn_with(bin, opts)?;
    let mut supervisor = Supervisor::new(&cfg.chaos);

    // ---- drive traffic while the schedule burns ----
    let mut activations = 0u64;
    let mut published = 0u64;
    let mut skipped_down = 0u64;
    let mut slot = 0u64;
    while cluster.elapsed_ms() < cfg.duration_ms {
        supervisor.poll(&mut cluster)?;
        slot += 1;
        let target = (slot as usize) % cfg.nodes;
        activations += 1;
        if cluster.alive(target) {
            match cluster.activate(target, slot) {
                Ok(did) => published += u64::from(did),
                // an activation can race a partition-era control hiccup;
                // the soak's job is to keep driving, not to die with it
                Err(_) => skipped_down += 1,
            }
        } else {
            skipped_down += 1;
        }
        if cfg.activation_gap_ms > 0 {
            std::thread::sleep(Duration::from_millis(cfg.activation_gap_ms));
        }
    }

    // ---- heal and watch the repair protocol reconverge ----
    supervisor.heal(&mut cluster)?;
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_millis(cfg.converge_timeout_ms);
    let mut converged = false;
    let mut final_len = 0u64;
    let mut last = None;
    while Instant::now() < deadline {
        let st = cluster.status()?;
        let solid = st.iter().all(|s| s.orphans == 0 && s.missing == 0);
        let len = st[0].len;
        let all_equal = st.iter().all(|s| s.len == len);
        if solid && all_equal && last == Some(len) {
            converged = true;
            final_len = len as u64;
            break;
        }
        last = (solid && all_equal).then_some(len);
        std::thread::sleep(Duration::from_millis(200));
    }
    let converge_ms = t0.elapsed().as_millis() as u64;

    // ---- bounded repair: the counters must go quiescent ----
    let rerequests_now = |cluster: &mut Cluster| -> io::Result<u64> {
        Ok(sum_counter(&cluster.metrics()?, "net.rerequests"))
    };
    let before = rerequests_now(&mut cluster)?;
    std::thread::sleep(Duration::from_millis(500));
    let rerequests = rerequests_now(&mut cluster)?;
    let repair_quiescent = converged && rerequests == before;

    // ---- archive agreement (set equality of encoded messages) ----
    let archives = cluster.archives()?;
    let mut encoded: Vec<Vec<Vec<u8>>> = archives
        .iter()
        .map(|a| a.iter().map(|m| m.encode().to_vec()).collect())
        .collect();
    for e in &mut encoded {
        e.sort();
    }
    let archives_agree = encoded.windows(2).all(|w| w[0] == w[1]);

    let metrics = cluster.metrics()?;
    let mut counters = BTreeMap::new();
    for (cs, _) in &metrics {
        for (name, v) in cs {
            *counters.entry(name.clone()).or_insert(0) += *v;
        }
    }

    let report = SoakReport {
        nodes: cfg.nodes as u64,
        seed: cfg.seed,
        duration_ms: cfg.duration_ms,
        activations,
        published,
        skipped_down,
        kills: supervisor.kills,
        respawns: supervisor.respawns,
        converged,
        converge_ms,
        final_len,
        repair_quiescent,
        rerequests,
        archives_agree,
        counters,
        plan: cfg.chaos.clone(),
    };
    cluster.shutdown()?;
    Ok((report, archives))
}

/// The preset a soak's archives should be audited against.
pub fn soak_preset(cfg: &SoakConfig) -> Preset {
    Preset {
        nodes: cfg.nodes,
        seed: cfg.seed,
    }
}

/// One daemon's snapshot as returned by `Cluster::metrics`:
/// `(counters, histograms)`.
type MetricsSnapshot = (Vec<(String, u64)>, Vec<(String, u64, u64)>);

fn sum_counter(metrics: &[MetricsSnapshot], name: &str) -> u64 {
    metrics
        .iter()
        .flat_map(|(c, _)| c.iter())
        .filter(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .sum()
}
