//! # lt-net — the learning tangle over real sockets
//!
//! Everything below [`tangle_gossip`]'s protocol layer so far ran inside
//! one process: the discrete-event [`Network`](tangle_gossip::Network) is
//! the in-memory [`Transport`](tangle_gossip::Transport). This crate is
//! the other implementation of that boundary — a length-framed TCP wire
//! protocol and the `lt-node` daemon, one gossip peer per process:
//!
//! * [`frame`] — the versioned `LTNT` frame format: header, payload,
//!   FNV-1a trailer; total decoding (malformed input is an error, never a
//!   panic; oversized length prefixes are rejected before allocation).
//!   [`frame::WireMsg`] maps 1:1 onto the four
//!   [`ProtocolMsg`](tangle_gossip::ProtocolMsg) variants plus liveness
//!   probes and the control plane the scale harness drives daemons with.
//! * [`protocol`] — [`NodeProtocol`]: one peer's protocol engine
//!   (receive/forward flooding, head advertisement, pull-based repair
//!   with rotating neighbours and exponential backoff), written against
//!   the [`Transport`](tangle_gossip::Transport) trait so the same state
//!   machine runs over TCP, over the in-memory simulator, and over the
//!   deterministic mock.
//! * [`mock`] — [`MockTransport`]: a seeded, clock-explicit transport
//!   with [`FaultPlan`](tangle_gossip::FaultPlan)-style drop / duplicate
//!   / reorder perturbations, for socket-free protocol tests.
//! * [`queue`] — bounded per-connection send queues; overflow is counted
//!   (`net.dropped`), never silently swallowed.
//! * [`preset`] — the shared conformance experiment (dataset, model,
//!   config, genesis) every executor of a cross-process differential run
//!   reconstructs independently.
//! * [`daemon`] — the `lt-node` daemon: listener, per-connection
//!   read/write loops, reconnect with decorrelated-jitter backoff,
//!   telemetry counters, and periodic `LTND` crash-recovery checkpoints
//!   with a `--restore` startup path.
//! * [`driver`] — spawns N local daemons and drives them: a lockstep
//!   schedule for byte-agreement with the in-process executors, a
//!   sustained-publish throughput/latency benchmark, and a
//!   [`driver::Supervisor`] that SIGKILLs and respawns daemons on a
//!   chaos schedule.
//! * [`chaos`] — socket-level fault injection: a seeded, serializable
//!   [`ChaosPlan`] of link partitions, latency/jitter, throttling, byte
//!   corruption, and resets, armed via per-pair TCP proxies
//!   ([`chaos::ChaosProxies`]).
//! * [`soak`] — long-haul runs under rolling chaos, asserting
//!   reconvergence, bounded repair, and cross-daemon archive agreement.

pub mod chaos;
pub mod daemon;
pub mod driver;
pub mod frame;
pub mod mock;
pub mod preset;
pub mod protocol;
pub mod queue;
pub mod soak;

pub use chaos::{
    ChaosAction, ChaosPlan, ChaosProxies, KillEvent, LinkChaos, LinkDirection, LinkFault,
};
pub use daemon::{run_daemon, DaemonConfig};
pub use driver::{
    default_node_bin, Cluster, ClusterOptions, LockstepReport, Supervisor, ThroughputReport,
};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, FrameError, StatusReport, WireMsg,
    CONTROL_PEER, MAX_PAYLOAD,
};
pub use mock::MockTransport;
pub use preset::{Preset, ORPHAN_CAP};
pub use protocol::NodeProtocol;
pub use queue::SendQueue;
pub use soak::{run_soak, SoakConfig, SoakReport};
