//! One peer's protocol engine, written against the transport boundary.
//!
//! [`NodeProtocol`] is the per-node half of what
//! [`tangle_gossip::Network`] does monolithically: receive-and-forward
//! flooding, advertise/request/delta repair, bounded re-requests with
//! exponential backoff and rotating neighbour selection. The semantics
//! mirror the simulator's `deliver` / `repair_tick` exactly — same
//! attempt bookkeeping (`attempts: missing cid → (attempt, next_at)`),
//! same backoff (`backoff_base << attempt`, shift capped at 16), same
//! neighbour rotation (`nbrs[(attempt + cid) % len]`) — so the state
//! machine tested deterministically over [`crate::MockTransport`] is the
//! one the TCP daemon runs.
//!
//! Time is an explicit `u64` the embedder advances: the daemon feeds
//! milliseconds since start, the mock feeds simulated ticks.

use std::collections::BTreeMap;
use tangle_gossip::{
    ContentId, Peer, ProtocolMsg, ReceiveOutcome, RepairConfig, Transport, TxMessage,
};

/// Per-node gossip + repair protocol state machine.
pub struct NodeProtocol {
    id: usize,
    peer: Peer,
    neighbours: Vec<usize>,
    repair_cfg: RepairConfig,
    /// Missing content id → (re-requests issued, next re-request time).
    attempts: BTreeMap<ContentId, (u32, u64)>,
    /// Earliest pending repair wake-up, if any.
    next_tick: Option<u64>,
    now: u64,
    telemetry: lt_telemetry::Telemetry,
}

impl NodeProtocol {
    /// A protocol engine for peer `id` starting from the shared genesis.
    pub fn new(id: usize, genesis: &TxMessage, pow_difficulty: u32, orphan_cap: usize) -> Self {
        Self {
            id,
            peer: Peer::new(id, genesis, pow_difficulty).with_orphan_cap(orphan_cap),
            neighbours: Vec::new(),
            repair_cfg: RepairConfig::default(),
            attempts: BTreeMap::new(),
            next_tick: None,
            now: 0,
            telemetry: lt_telemetry::Telemetry::disabled(),
        }
    }

    /// A protocol engine wrapped around an already-built replica —
    /// the restore path: the daemon rebuilds its [`Peer`] from an LTCP
    /// checkpoint and resumes gossiping from that prefix. Repair state
    /// starts empty; head advertisement rounds re-arm it as live
    /// neighbours reveal what the checkpoint missed.
    pub fn from_peer(peer: Peer) -> Self {
        Self {
            id: peer.id,
            peer,
            neighbours: Vec::new(),
            repair_cfg: RepairConfig::default(),
            attempts: BTreeMap::new(),
            next_tick: None,
            now: 0,
            telemetry: lt_telemetry::Telemetry::disabled(),
        }
    }

    /// Override the repair parameters.
    pub fn set_repair(&mut self, cfg: RepairConfig) {
        self.repair_cfg = cfg;
    }

    /// Attach an observability handle: deliveries are then mirrored into
    /// `net.delivered` / `net.duplicates` / `net.orphaned` /
    /// `net.rejected` / `net.rerequests`, matching the simulator's
    /// `gossip.*` counter points.
    pub fn set_telemetry(&mut self, telemetry: lt_telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Replace the live neighbour set (connected peer ids).
    pub fn set_neighbours(&mut self, neighbours: Vec<usize>) {
        self.neighbours = neighbours;
    }

    /// Current live neighbours.
    pub fn neighbours(&self) -> &[usize] {
        &self.neighbours
    }

    /// This node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying replica holder.
    pub fn peer(&self) -> &Peer {
        &self.peer
    }

    /// Advance the protocol clock (monotonic; going backwards is a no-op).
    pub fn set_now(&mut self, now: u64) {
        self.now = self.now.max(now);
    }

    /// Current protocol clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// When [`NodeProtocol::tick`] next wants to run, if ever.
    pub fn next_wake(&self) -> Option<u64> {
        self.next_tick
    }

    /// Publish a locally created transaction: insert it into the replica
    /// and flood it to every neighbour. Returns the receive outcome (a
    /// self-publish is normally [`ReceiveOutcome::Accepted`]).
    pub fn publish(&mut self, msg: TxMessage, t: &mut impl Transport) -> ReceiveOutcome {
        let outcome = self.peer.receive(&msg);
        if outcome == ReceiveOutcome::Accepted || outcome == ReceiveOutcome::OrphanBuffered {
            self.forward(usize::MAX, msg, t);
        }
        outcome
    }

    /// Advertise this node's heads to every neighbour (the push half of
    /// anti-entropy; the replies carry whatever the neighbours hold that
    /// we provably lack, and our unknown-head registrations pull the
    /// rest).
    pub fn advertise_heads(&mut self, t: &mut impl Transport) {
        let heads = self.peer.heads();
        for &nb in &self.neighbours {
            t.send(
                self.id,
                nb,
                ProtocolMsg::Advertise {
                    heads: heads.clone(),
                },
            );
        }
    }

    /// Handle one protocol message arriving from neighbour `from`.
    /// Returns the receive outcome for transaction-carrying messages.
    pub fn on_message(
        &mut self,
        from: usize,
        msg: ProtocolMsg,
        t: &mut impl Transport,
    ) -> Option<ReceiveOutcome> {
        match msg {
            // Same handling for both, as in the simulator: only the
            // wire-level intent differs.
            ProtocolMsg::Publish(m) | ProtocolMsg::Delta(m) => {
                self.telemetry.count("net.delivered", 1);
                let outcome = self.peer.receive(&m);
                match outcome {
                    ReceiveOutcome::Accepted => self.forward(from, m, t),
                    ReceiveOutcome::OrphanBuffered => {
                        self.telemetry.count("net.orphaned", 1);
                        self.forward(from, m, t);
                        if self.repair_cfg.enabled {
                            self.schedule_tick(self.now + self.repair_cfg.delay);
                        }
                    }
                    ReceiveOutcome::Duplicate => self.telemetry.count("net.duplicates", 1),
                    ReceiveOutcome::InvalidPow | ReceiveOutcome::Corrupt => {
                        self.telemetry.count("net.rejected_rx", 1)
                    }
                }
                Some(outcome)
            }
            ProtocolMsg::Advertise { heads } => {
                let unknown: Vec<ContentId> = heads
                    .iter()
                    .copied()
                    .filter(|h| !self.peer.has_seen(*h))
                    .collect();
                for m in self.peer.delta_for(&heads) {
                    t.send(self.id, from, ProtocolMsg::Delta(m));
                }
                if !unknown.is_empty() && self.repair_cfg.enabled {
                    let first_due = self.now + self.repair_cfg.delay;
                    for cid in unknown {
                        let entry = self.attempts.entry(cid).or_insert((0, first_due));
                        if entry.0 >= self.repair_cfg.max_retries {
                            // fresh evidence the tx exists: retry anew
                            *entry = (0, first_due);
                        }
                    }
                    self.schedule_tick(first_due);
                }
                None
            }
            ProtocolMsg::Request { wants } => {
                let msgs: Vec<TxMessage> = wants
                    .iter()
                    .filter_map(|w| self.peer.message_for(*w).cloned())
                    .collect();
                for m in msgs {
                    t.send(self.id, from, ProtocolMsg::Delta(m));
                }
                None
            }
        }
    }

    /// One round of the pull protocol: re-request every due missing
    /// transaction from a rotating neighbour, back off exponentially per
    /// transaction, and remember the earliest future retry in
    /// [`NodeProtocol::next_wake`].
    pub fn tick(&mut self, now: u64, t: &mut impl Transport) {
        self.set_now(now);
        if self.next_tick.is_some_and(|due| due <= self.now) {
            self.next_tick = None;
        }
        if !self.repair_cfg.enabled {
            return;
        }
        let now = self.now;
        let cfg = self.repair_cfg;
        let missing: Vec<ContentId> = self.peer.missing().iter().copied().collect();
        self.attempts
            .retain(|cid, _| missing.binary_search(cid).is_ok());
        for cid in &missing {
            self.attempts.entry(*cid).or_insert((0, now));
        }
        if self.neighbours.is_empty() {
            return;
        }
        let nbrs = &self.neighbours;
        let mut sends: BTreeMap<usize, Vec<ContentId>> = BTreeMap::new();
        let mut next_due: Option<u64> = None;
        for (cid, (attempt, next_at)) in self.attempts.iter_mut() {
            if *attempt >= cfg.max_retries {
                continue;
            }
            if *next_at > now {
                next_due = Some(next_due.map_or(*next_at, |d| d.min(*next_at)));
                continue;
            }
            let nb = nbrs[(*attempt as usize + cid.0 as usize) % nbrs.len()];
            sends.entry(nb).or_default().push(*cid);
            *attempt += 1;
            *next_at = now + (cfg.backoff_base << (*attempt).min(16));
            if *attempt < cfg.max_retries {
                next_due = Some(next_due.map_or(*next_at, |d| d.min(*next_at)));
            }
        }
        let total: u64 = sends.values().map(|v| v.len() as u64).sum();
        if total > 0 {
            self.telemetry.count("net.rerequests", total);
        }
        for (nb, wants) in sends {
            t.send(self.id, nb, ProtocolMsg::Request { wants });
        }
        if let Some(due) = next_due {
            self.schedule_tick(due);
        }
    }

    /// Re-request attempts issued so far for `cid` (test observability).
    pub fn attempts_for(&self, cid: ContentId) -> u32 {
        self.attempts.get(&cid).map_or(0, |(a, _)| *a)
    }

    fn schedule_tick(&mut self, at: u64) {
        if self.next_tick.is_none_or(|due| at < due) {
            self.next_tick = Some(at);
        }
    }

    /// Flood a first-seen transaction to every neighbour except the one
    /// it arrived from.
    fn forward(&mut self, came_from: usize, msg: TxMessage, t: &mut impl Transport) {
        for &nb in &self.neighbours {
            if nb == came_from {
                continue;
            }
            t.send(self.id, nb, ProtocolMsg::Publish(msg.clone()));
        }
    }
}
