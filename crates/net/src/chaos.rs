//! Socket-level chaos engineering for `lt-net`.
//!
//! PR 2's `FaultPlan` perturbs the in-process mock network; this module
//! does the same at the stream boundary of a *real* daemon cluster. A
//! [`ChaosPlan`] is a seeded, serializable schedule of per-link faults
//! (partitions, latency/jitter, bandwidth throttling, byte corruption,
//! mid-stream resets) plus a SIGKILL/restore schedule for daemons. The
//! driver arms it by interposing one tiny TCP proxy per unordered daemon
//! pair ([`ChaosProxies`]): daemons are handed proxy addresses in their
//! `Connect` address book, so every data-plane byte crosses the injector
//! while control connections stay direct.
//!
//! The decision logic lives in [`LinkDirection`], a pure state machine
//! over `(now_ms, chunk)` that the proxy pumps consult — unit-testable
//! without sockets, and deterministic per `(plan.seed, from, to)` so the
//! same plan replays the same schedule. (Byte-level corruption draws
//! depend on how the OS chunks the stream, so corrupted *bytes* can
//! differ across replays; the fault windows, targets, and kill schedule
//! are exact.)

use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use tangle_gossip::{FaultPlan, Recovery};
use tinynn::rng::{derive, seeded, Rng};

/// One fault applied to a link for the duration of its window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LinkFault {
    /// No bytes cross the link. Bidirectional partitions sever the
    /// proxied connection and refuse redials until the window heals;
    /// unidirectional partitions stall one direction (delivery resumes
    /// at heal, exercising queue-overflow accounting instead of the
    /// reconnect path).
    Partition,
    /// Add `ms` (+ uniform `0..=jitter_ms`) of delay to each chunk.
    Latency { ms: u64, jitter_ms: u64 },
    /// Cap throughput at `bytes_per_ms` via token-bucket delays.
    Throttle { bytes_per_ms: u64 },
    /// Flip one random bit in a byte with probability `per_byte_ppm` /
    /// 1e6 per byte. The receiver's frame checksum catches the damage,
    /// kills the connection, and forces a redial.
    Corrupt { per_byte_ppm: u32 },
    /// Sever the connection once when the window opens (a mid-stream
    /// RST), then let redials through immediately.
    Reset,
}

/// A fault scheduled on one link for `[from_ms, until_ms)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkChaos {
    /// Source daemon (for unidirectional faults, the stalled direction
    /// is `a → b`).
    pub a: usize,
    /// Destination daemon.
    pub b: usize,
    /// Apply to both directions of the pair?
    pub bidirectional: bool,
    /// Window start, ms since the chaos epoch (proxy spawn).
    pub from_ms: u64,
    /// Window end (exclusive); the link heals here.
    pub until_ms: u64,
    /// What the window does to traffic.
    pub fault: LinkFault,
}

impl LinkChaos {
    fn applies(&self, from: usize, to: usize) -> bool {
        (self.a == from && self.b == to) || (self.bidirectional && self.a == to && self.b == from)
    }

    fn active(&self, now_ms: u64) -> bool {
        self.from_ms <= now_ms && now_ms < self.until_ms
    }
}

/// One scheduled SIGKILL (and restore) of a daemon, executed by the
/// driver's supervisor — the daemon is killed hard, never gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KillEvent {
    /// Daemon to kill.
    pub daemon: usize,
    /// Kill time, ms since the chaos epoch.
    pub at_ms: u64,
    /// Respawn time (same listen address, `--restore`).
    pub restore_at_ms: u64,
    /// Restart from checkpoint or from genesis (both must reconverge;
    /// `FromCheckpoint` additionally exercises the LTCP restore path).
    pub recovery: Recovery,
}

/// A deterministic, replayable chaos schedule for a daemon cluster —
/// the real-socket analogue of [`tangle_gossip::FaultPlan`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed for per-link fault RNGs (jitter draws, corruption draws).
    pub seed: u64,
    /// Scheduled link faults.
    pub links: Vec<LinkChaos>,
    /// Scheduled daemon kills.
    pub kills: Vec<KillEvent>,
}

impl ChaosPlan {
    /// A plan that does nothing — running under it is equivalent to
    /// running without proxies (modulo one extra localhost hop).
    pub fn benign(seed: u64) -> Self {
        Self {
            seed,
            links: Vec::new(),
            kills: Vec::new(),
        }
    }

    pub fn is_benign(&self) -> bool {
        self.links.is_empty() && self.kills.is_empty()
    }

    /// Sanity-check a plan against a cluster size before arming it.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for l in &self.links {
            if l.a >= nodes || l.b >= nodes {
                return Err(format!(
                    "link {}→{} out of range for {nodes} nodes",
                    l.a, l.b
                ));
            }
            if l.a == l.b {
                return Err(format!("self-link {} is not a link", l.a));
            }
            if l.from_ms >= l.until_ms {
                return Err(format!("empty window [{}, {})", l.from_ms, l.until_ms));
            }
        }
        for k in &self.kills {
            if k.daemon >= nodes {
                return Err(format!("kill of daemon {} out of range", k.daemon));
            }
            if k.daemon == 0 {
                return Err("daemon 0 is the stable observer; never kill it".into());
            }
            if k.restore_at_ms <= k.at_ms {
                return Err(format!(
                    "kill at {} restores at {}",
                    k.at_ms, k.restore_at_ms
                ));
            }
        }
        Ok(())
    }

    /// Build a rolling chaos schedule for an `nodes`-daemon soak of
    /// `horizon_ms`: back-to-back link-fault windows cycling through the
    /// fault catalog on deterministically drawn pairs, plus a
    /// churn-derived kill schedule (reusing [`FaultPlan::churn`] so the
    /// mock and socket harnesses agree on what "churn" means). The last
    /// fifth of the horizon is left fault-free so the cluster has
    /// headroom to reconverge before the final audit.
    pub fn rolling(nodes: usize, horizon_ms: u64, seed: u64) -> Self {
        assert!(nodes >= 2, "chaos needs at least two daemons");
        let mut rng = seeded(derive(seed, 0xC7A0_5C7A));
        let active_until = horizon_ms - horizon_ms / 5;
        let mut links = Vec::new();
        let mut t = 500u64; // let the mesh come up first
        let mut k = 0usize;
        while t + 800 <= active_until {
            let len = rng.random_range(600..=1400u64).min(active_until - t);
            let a = rng.random_range(0..nodes);
            let mut b = rng.random_range(0..nodes - 1);
            if b >= a {
                b += 1;
            }
            let fault = match k % 5 {
                0 | 1 => LinkFault::Partition,
                2 => LinkFault::Latency {
                    ms: rng.random_range(5..=25u64),
                    jitter_ms: rng.random_range(0..=10u64),
                },
                3 => LinkFault::Corrupt { per_byte_ppm: 200 },
                _ => LinkFault::Reset,
            };
            links.push(LinkChaos {
                a,
                b,
                bidirectional: k.is_multiple_of(5),
                from_ms: t,
                until_ms: t + len,
                fault,
            });
            t += len + rng.random_range(200..=600u64);
            k += 1;
        }
        let cycles = ((active_until / 5000) as usize).max(1);
        let churn = FaultPlan::churn(nodes, cycles, active_until, 900, derive(seed, 0x0517));
        let kills = churn
            .crashes
            .iter()
            .map(|c| {
                let at_ms = c.at.max(1000);
                KillEvent {
                    daemon: c.peer,
                    at_ms,
                    restore_at_ms: c.restart_at.unwrap_or(c.at + 900).max(at_ms + 500),
                    recovery: c.recovery,
                }
            })
            .collect();
        Self { seed, links, kills }
    }

    /// Serialize for replay (`results/soak.json` embeds this).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ChaosPlan is always serializable")
    }

    /// Parse a plan previously emitted by [`ChaosPlan::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad ChaosPlan JSON: {e:?}"))
    }
}

/// What the injector decided for a chunk (or for an idle poll).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Deliver after `delay_ms` (0 = immediately).
    Forward { delay_ms: u64 },
    /// Stall delivery until the window heals at `until_ms`.
    Hold { until_ms: u64 },
    /// Tear the connection down (both half-streams).
    Sever,
}

/// The pure per-direction fault state machine. One instance per directed
/// link `(from → to)`; the proxy pumps feed it wall-clock-relative
/// `now_ms` and mutable chunks, and obey the returned [`ChaosAction`].
pub struct LinkDirection {
    faults: Vec<LinkChaos>,
    /// Reset windows fire exactly once; parallel to `faults`.
    fired: Vec<bool>,
    /// Token-bucket state per throttle window: bytes already forwarded.
    throttled: HashMap<usize, u64>,
    rng: Rng,
}

impl LinkDirection {
    pub fn new(plan: &ChaosPlan, from: usize, to: usize) -> Self {
        let faults: Vec<LinkChaos> = plan
            .links
            .iter()
            .filter(|l| l.applies(from, to))
            .copied()
            .collect();
        let fired = vec![false; faults.len()];
        let salt = 0xD12E_C700u64 ^ ((from as u64) << 32) ^ to as u64;
        Self {
            faults,
            fired,
            throttled: HashMap::new(),
            rng: seeded(derive(plan.seed, salt)),
        }
    }

    /// Faults that act even on an idle link: bidirectional partitions
    /// sever standing connections, resets fire once when their window
    /// opens. Pumps call this on every poll so a partition takes effect
    /// without waiting for traffic.
    pub fn idle_action(&mut self, now_ms: u64) -> ChaosAction {
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            if !f.active(now_ms) {
                continue;
            }
            match f.fault {
                LinkFault::Partition if f.bidirectional => return ChaosAction::Sever,
                LinkFault::Reset if !self.fired[i] => {
                    self.fired[i] = true;
                    return ChaosAction::Sever;
                }
                _ => {}
            }
        }
        ChaosAction::Forward { delay_ms: 0 }
    }

    /// Decide the fate of `chunk` read off the wire at `now_ms`. May
    /// mutate the chunk (corruption). Overlapping windows compose:
    /// sever wins, then stall, then latency/throttle delays add up.
    pub fn on_chunk(&mut self, now_ms: u64, chunk: &mut [u8]) -> ChaosAction {
        if self.idle_action(now_ms) == ChaosAction::Sever {
            return ChaosAction::Sever;
        }
        let mut hold_until: Option<u64> = None;
        let mut delay = 0u64;
        for i in 0..self.faults.len() {
            let f = self.faults[i];
            if !f.active(now_ms) {
                continue;
            }
            match f.fault {
                // bidirectional partitions already severed above
                LinkFault::Partition => {
                    hold_until = Some(hold_until.map_or(f.until_ms, |u| u.max(f.until_ms)));
                }
                LinkFault::Latency { ms, jitter_ms } => {
                    delay += ms;
                    if jitter_ms > 0 {
                        delay += self.rng.random_range(0..=jitter_ms);
                    }
                }
                LinkFault::Throttle { bytes_per_ms } => {
                    let rate = bytes_per_ms.max(1);
                    let sent = self.throttled.entry(i).or_insert(0);
                    *sent += chunk.len() as u64;
                    let budget = (now_ms - f.from_ms + 1) * rate;
                    if *sent > budget {
                        delay += (*sent - budget) / rate;
                    }
                }
                LinkFault::Corrupt { per_byte_ppm } => {
                    for byte in chunk.iter_mut() {
                        if self.rng.random_range(0..1_000_000u32) < per_byte_ppm {
                            *byte ^= 1 << self.rng.random_range(0..8u32);
                        }
                    }
                }
                LinkFault::Reset => {}
            }
        }
        if let Some(until_ms) = hold_until {
            return ChaosAction::Hold { until_ms };
        }
        ChaosAction::Forward { delay_ms: delay }
    }

    /// Should a fresh dial across this link be refused right now? Only
    /// bidirectional partitions refuse dials — everything else lets the
    /// connection form and perturbs the stream instead.
    pub fn refuse_dial(&self, now_ms: u64) -> bool {
        self.faults
            .iter()
            .any(|f| f.bidirectional && f.active(now_ms) && f.fault == LinkFault::Partition)
    }
}

/// One chaos proxy per unordered daemon pair. Daemon `i` dials daemon
/// `j > i` through `addr_for(i, j)`; both directions of the proxied
/// stream pass through their [`LinkDirection`] injectors.
pub struct ChaosProxies {
    addrs: HashMap<(usize, usize), String>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
}

impl ChaosProxies {
    /// Bind one proxy listener per pair `(i, j<i..)`, forwarding to
    /// `real_addrs[j]`. `epoch` anchors the plan's ms clock.
    pub fn spawn(plan: &ChaosPlan, epoch: Instant, real_addrs: &[String]) -> io::Result<Self> {
        let n = real_addrs.len();
        let stop = Arc::new(AtomicBool::new(false));
        let mut addrs = HashMap::new();
        let mut acceptors = Vec::new();
        for i in 0..n {
            for (j, real) in real_addrs.iter().enumerate().skip(i + 1) {
                let listener = TcpListener::bind("127.0.0.1:0")?;
                listener.set_nonblocking(true)?;
                addrs.insert((i, j), listener.local_addr()?.to_string());
                let fwd = Arc::new(Mutex::new(LinkDirection::new(plan, i, j)));
                let rev = Arc::new(Mutex::new(LinkDirection::new(plan, j, i)));
                let target = real.clone();
                let stop = Arc::clone(&stop);
                acceptors.push(thread::spawn(move || {
                    accept_loop(listener, target, fwd, rev, epoch, stop)
                }));
            }
        }
        Ok(Self {
            addrs,
            stop,
            acceptors,
        })
    }

    /// The address daemon `dialer` should use to reach `target`
    /// (daemons only dial upward, so `dialer < target`).
    pub fn addr_for(&self, dialer: usize, target: usize) -> Option<&String> {
        self.addrs.get(&(dialer, target))
    }

    /// Stop accepting and tear down all pump threads.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.acceptors {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    target: String,
    fwd: Arc<Mutex<LinkDirection>>,
    rev: Arc<Mutex<LinkDirection>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let now = epoch.elapsed().as_millis() as u64;
                if fwd.lock().unwrap().refuse_dial(now) {
                    // refuse-by-close: the dialer sees a dead link and
                    // backs off, exactly like a blackholed route
                    drop(client);
                    continue;
                }
                match TcpStream::connect(&target) {
                    Ok(server) => {
                        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                            continue;
                        };
                        let (f, r) = (Arc::clone(&fwd), Arc::clone(&rev));
                        let (st1, st2) = (Arc::clone(&stop), Arc::clone(&stop));
                        thread::spawn(move || pump(client, server, f, epoch, st1));
                        thread::spawn(move || pump(s2, c2, r, epoch, st2));
                    }
                    Err(_) => drop(client), // target down: refuse the dial
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Copy `src → dst` through the injector. Short read timeouts keep the
/// pump polling `idle_action` so partitions sever even silent links.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Arc<Mutex<LinkDirection>>,
    epoch: Instant,
    stop: Arc<AtomicBool>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(20)));
    let sever = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            sever(&src, &dst);
            return;
        }
        let now = epoch.elapsed().as_millis() as u64;
        if dir.lock().unwrap().idle_action(now) == ChaosAction::Sever {
            sever(&src, &dst);
            return;
        }
        match src.read(&mut buf) {
            Ok(0) => {
                sever(&src, &dst);
                return;
            }
            Ok(n) => {
                let now = epoch.elapsed().as_millis() as u64;
                let action = dir.lock().unwrap().on_chunk(now, &mut buf[..n]);
                match action {
                    ChaosAction::Forward { delay_ms } => {
                        if delay_ms > 0 {
                            thread::sleep(Duration::from_millis(delay_ms.min(250)));
                        }
                        if dst.write_all(&buf[..n]).is_err() {
                            sever(&src, &dst);
                            return;
                        }
                    }
                    ChaosAction::Hold { until_ms } => {
                        // stall, but keep checking for sever/stop so a
                        // partition upgrade still tears the link down
                        loop {
                            let now = epoch.elapsed().as_millis() as u64;
                            if now >= until_ms {
                                break;
                            }
                            if stop.load(Ordering::SeqCst)
                                || dir.lock().unwrap().idle_action(now) == ChaosAction::Sever
                            {
                                sever(&src, &dst);
                                return;
                            }
                            thread::sleep(Duration::from_millis(20));
                        }
                        if dst.write_all(&buf[..n]).is_err() {
                            sever(&src, &dst);
                            return;
                        }
                    }
                    ChaosAction::Sever => {
                        sever(&src, &dst);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                sever(&src, &dst);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(links: Vec<LinkChaos>) -> ChaosPlan {
        ChaosPlan {
            seed: 7,
            links,
            kills: Vec::new(),
        }
    }

    #[test]
    fn benign_plan_forwards_everything() {
        let plan = ChaosPlan::benign(1);
        assert!(plan.is_benign());
        let mut d = LinkDirection::new(&plan, 0, 1);
        let mut chunk = [1u8, 2, 3];
        for now in [0, 100, 10_000] {
            assert_eq!(d.idle_action(now), ChaosAction::Forward { delay_ms: 0 });
            assert_eq!(
                d.on_chunk(now, &mut chunk),
                ChaosAction::Forward { delay_ms: 0 }
            );
        }
        assert_eq!(chunk, [1, 2, 3]);
        assert!(!d.refuse_dial(0));
    }

    #[test]
    fn bidirectional_partition_severs_both_ways_and_refuses_dials() {
        let plan = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: true,
            from_ms: 100,
            until_ms: 200,
            fault: LinkFault::Partition,
        }]);
        for (from, to) in [(0, 1), (1, 0)] {
            let mut d = LinkDirection::new(&plan, from, to);
            assert_eq!(d.idle_action(50), ChaosAction::Forward { delay_ms: 0 });
            assert_eq!(d.idle_action(100), ChaosAction::Sever);
            assert_eq!(d.idle_action(199), ChaosAction::Sever);
            assert_eq!(d.idle_action(200), ChaosAction::Forward { delay_ms: 0 });
            assert!(!d.refuse_dial(99));
            assert!(d.refuse_dial(150));
            assert!(!d.refuse_dial(200));
        }
        // an unrelated link is untouched
        let mut other = LinkDirection::new(&plan, 0, 2);
        assert_eq!(other.idle_action(150), ChaosAction::Forward { delay_ms: 0 });
    }

    #[test]
    fn unidirectional_partition_stalls_one_direction_only() {
        let plan = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: false,
            from_ms: 100,
            until_ms: 300,
            fault: LinkFault::Partition,
        }]);
        let mut fwd = LinkDirection::new(&plan, 0, 1);
        let mut rev = LinkDirection::new(&plan, 1, 0);
        let mut chunk = [0u8; 8];
        assert_eq!(
            fwd.on_chunk(150, &mut chunk),
            ChaosAction::Hold { until_ms: 300 }
        );
        // idle polls do not sever a stalled link
        assert_eq!(fwd.idle_action(150), ChaosAction::Forward { delay_ms: 0 });
        assert!(!fwd.refuse_dial(150));
        assert_eq!(
            rev.on_chunk(150, &mut chunk),
            ChaosAction::Forward { delay_ms: 0 }
        );
    }

    #[test]
    fn reset_fires_exactly_once_per_window() {
        let plan = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: true,
            from_ms: 100,
            until_ms: 200,
            fault: LinkFault::Reset,
        }]);
        let mut d = LinkDirection::new(&plan, 0, 1);
        assert_eq!(d.idle_action(120), ChaosAction::Sever);
        // fired: the redial goes through for the rest of the window
        assert_eq!(d.idle_action(150), ChaosAction::Forward { delay_ms: 0 });
        let mut chunk = [0u8; 4];
        assert_eq!(
            d.on_chunk(160, &mut chunk),
            ChaosAction::Forward { delay_ms: 0 }
        );
        assert!(!d.refuse_dial(150));
    }

    #[test]
    fn latency_and_throttle_delays_accumulate() {
        let plan = plan_with(vec![
            LinkChaos {
                a: 0,
                b: 1,
                bidirectional: false,
                from_ms: 0,
                until_ms: 1000,
                fault: LinkFault::Latency {
                    ms: 10,
                    jitter_ms: 0,
                },
            },
            LinkChaos {
                a: 0,
                b: 1,
                bidirectional: false,
                from_ms: 0,
                until_ms: 1000,
                fault: LinkFault::Throttle { bytes_per_ms: 1 },
            },
        ]);
        let mut d = LinkDirection::new(&plan, 0, 1);
        let mut chunk = [0u8; 100];
        // 100 bytes at 1 byte/ms with a 1-byte budget: ~99ms throttle + 10ms latency
        match d.on_chunk(0, &mut chunk) {
            ChaosAction::Forward { delay_ms } => assert!(delay_ms >= 100, "delay {delay_ms}"),
            other => panic!("expected forward, got {other:?}"),
        }
        // jitter draws are deterministic per seed/direction
        let plan2 = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: false,
            from_ms: 0,
            until_ms: 1000,
            fault: LinkFault::Latency {
                ms: 5,
                jitter_ms: 10,
            },
        }]);
        let mut x = LinkDirection::new(&plan2, 0, 1);
        let mut y = LinkDirection::new(&plan2, 0, 1);
        let mut c1 = [0u8; 4];
        let mut c2 = [0u8; 4];
        for now in 0..20 {
            assert_eq!(x.on_chunk(now, &mut c1), y.on_chunk(now, &mut c2));
        }
    }

    #[test]
    fn corruption_flips_bits_deterministically_per_seed() {
        let plan = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: false,
            from_ms: 0,
            until_ms: 1000,
            fault: LinkFault::Corrupt {
                per_byte_ppm: 500_000,
            },
        }]);
        let mut d1 = LinkDirection::new(&plan, 0, 1);
        let mut d2 = LinkDirection::new(&plan, 0, 1);
        let mut a = [0u8; 256];
        let mut b = [0u8; 256];
        d1.on_chunk(10, &mut a);
        d2.on_chunk(10, &mut b);
        assert_eq!(a, b, "same seed + chunking → same flips");
        assert!(a.iter().any(|&x| x != 0), "50% ppm must flip something");
        // a different direction draws an independent stream
        let mut rev = LinkDirection::new(&plan, 1, 0);
        let mut c = [0u8; 256];
        rev.on_chunk(10, &mut c);
        assert_eq!(c, [0u8; 256], "unidirectional fault leaves reverse alone");
    }

    #[test]
    fn rolling_plan_is_deterministic_valid_and_replayable() {
        let a = ChaosPlan::rolling(4, 60_000, 42);
        let b = ChaosPlan::rolling(4, 60_000, 42);
        assert_eq!(a, b);
        assert!(!a.is_benign());
        a.validate(4).unwrap();
        assert!(!a.links.is_empty());
        assert!(!a.kills.is_empty());
        // windows stay clear of the final re-convergence headroom
        for l in &a.links {
            assert!(l.until_ms <= 48_000);
        }
        for k in &a.kills {
            assert!(k.daemon != 0, "observer daemon must survive");
            assert!(k.restore_at_ms > k.at_ms);
        }
        // JSON roundtrip reproduces the plan exactly
        let json = a.to_json();
        let back = ChaosPlan::from_json(&json).unwrap();
        assert_eq!(a, back);
        // different seed → different schedule
        let c = ChaosPlan::rolling(4, 60_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn validate_rejects_malformed_plans() {
        let mut p = ChaosPlan::benign(1);
        p.links.push(LinkChaos {
            a: 0,
            b: 9,
            bidirectional: false,
            from_ms: 0,
            until_ms: 10,
            fault: LinkFault::Partition,
        });
        assert!(p.validate(4).is_err());
        let mut p = ChaosPlan::benign(1);
        p.kills.push(KillEvent {
            daemon: 0,
            at_ms: 10,
            restore_at_ms: 20,
            recovery: Recovery::FromCheckpoint,
        });
        assert!(p.validate(4).is_err());
        let mut p = ChaosPlan::benign(1);
        p.links.push(LinkChaos {
            a: 1,
            b: 2,
            bidirectional: false,
            from_ms: 10,
            until_ms: 10,
            fault: LinkFault::Partition,
        });
        assert!(p.validate(4).is_err());
    }

    #[test]
    fn proxies_forward_and_partition_real_sockets() {
        use std::io::{Read as _, Write as _};
        // echo server standing in for a daemon
        let server = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr0 = "127.0.0.1:1".to_string(); // daemon 0 never dialed here
        let addr1 = server.local_addr().unwrap().to_string();
        thread::spawn(move || {
            for conn in server.incoming().flatten() {
                thread::spawn(move || {
                    let mut conn = conn;
                    let mut buf = [0u8; 64];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        let plan = plan_with(vec![LinkChaos {
            a: 0,
            b: 1,
            bidirectional: true,
            from_ms: 400,
            until_ms: 100_000,
            fault: LinkFault::Partition,
        }]);
        let epoch = Instant::now();
        let proxies = ChaosProxies::spawn(&plan, epoch, &[addr0, addr1]).unwrap();
        let paddr = proxies.addr_for(0, 1).unwrap().clone();
        // before the window: bytes flow both ways through the proxy
        let mut c = TcpStream::connect(&paddr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        // window opens: the standing connection is severed...
        while epoch.elapsed().as_millis() < 450 {
            thread::sleep(Duration::from_millis(10));
        }
        let died = match c.read(&mut buf) {
            Ok(0) | Err(_) => true,
            Ok(_) => false,
        };
        assert!(died, "partition must sever the proxied connection");
        // ...and redials are refused (connect succeeds, then closes
        // without ever echoing)
        let mut c2 = TcpStream::connect(&paddr).unwrap();
        c2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = c2.write_all(b"ping");
        let refused = match c2.read(&mut buf) {
            Ok(0) | Err(_) => true,
            Ok(_) => false,
        };
        assert!(refused, "dials during a partition must be refused");
        proxies.shutdown();
    }
}
