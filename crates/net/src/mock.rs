//! Deterministic in-memory transport for socket-free protocol tests.
//!
//! [`MockTransport`] implements [`Transport`] as a seeded discrete-event
//! queue with an explicit clock: sends are scheduled with drawn latency
//! and — when a [`FaultPlan`] is armed — perturbed by its drop /
//! duplicate / corrupt / reorder rates, exactly the fault model of the
//! in-process simulator. Tests pop due deliveries and feed them into
//! [`crate::NodeProtocol`]s by hand, so every interleaving is replayable
//! from the seed alone.

use rand::RngExt;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tangle_gossip::{FaultPlan, ProtocolMsg, Transport};
use tinynn::rng::{derive, seeded, Rng};

/// One scheduled delivery.
pub struct Delivery {
    /// Delivery time on the mock clock.
    pub at: u64,
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// The message.
    pub msg: ProtocolMsg,
}

/// Seeded, clock-explicit mock transport.
pub struct MockTransport {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    pending: HashMap<u64, Delivery>,
    latency: (u64, u64),
    plan: FaultPlan,
    rng: Rng,
    fault_rng: Rng,
    /// Sends attempted via [`Transport::send`].
    pub sent: u64,
    /// Sends the loss model (or fault drop rate) discarded.
    pub dropped: u64,
}

impl MockTransport {
    /// A mock with per-hop latency drawn from `latency.0..=latency.1`
    /// ticks and a benign fault plan.
    pub fn new(seed: u64, latency: (u64, u64)) -> Self {
        Self {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            pending: HashMap::new(),
            latency: (latency.0, latency.1.max(latency.0)),
            plan: FaultPlan::default(),
            rng: seeded(derive(seed, 0x30C4)),
            fault_rng: seeded(derive(seed, 0xFA017)),
            sent: 0,
            dropped: 0,
        }
    }

    /// Arm a fault plan (crash events are ignored — the mock has no
    /// peer lifecycle; drop/duplicate/corrupt/reorder apply per hop).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.fault_rng = seeded(derive(plan.seed, 0xFA017));
        self.plan = plan;
    }

    /// Current mock time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Deliveries still in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Time of the next scheduled delivery, if any.
    pub fn next_at(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((at, _))| *at)
    }

    /// Pop the next delivery, advancing the clock to it.
    pub fn pop_next(&mut self) -> Option<Delivery> {
        let Reverse((at, key)) = self.queue.pop()?;
        let d = self.pending.remove(&key).expect("delivery recorded");
        self.now = self.now.max(at);
        Some(d)
    }

    /// Pop the next delivery only if it is due by `deadline`.
    pub fn pop_due(&mut self, deadline: u64) -> Option<Delivery> {
        if self.next_at()? > deadline {
            return None;
        }
        self.pop_next()
    }

    /// Advance the clock without delivering (models idle waiting).
    pub fn advance_to(&mut self, at: u64) {
        self.now = self.now.max(at);
    }

    fn schedule(&mut self, at: u64, d: Delivery) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq)));
        self.pending.insert(self.seq, d);
    }
}

impl Transport for MockTransport {
    fn send(&mut self, from: usize, to: usize, msg: ProtocolMsg) -> bool {
        self.sent += 1;
        let base_delay = self.rng.random_range(self.latency.0..=self.latency.1);
        let mut msg = msg;
        let mut delays = vec![base_delay];
        let f = &self.plan;
        if f.drop > 0.0 && self.fault_rng.random_range(0.0..1.0) < f.drop {
            self.dropped += 1;
            return false;
        }
        if f.duplicate > 0.0 && self.fault_rng.random_range(0.0..1.0) < f.duplicate {
            delays.push(base_delay);
        }
        if f.corrupt > 0.0 {
            if let ProtocolMsg::Publish(m) | ProtocolMsg::Delta(m) = &mut msg {
                if self.fault_rng.random_range(0.0..1.0) < f.corrupt && !m.payload.is_empty() {
                    let idx = self.fault_rng.random_range(0..m.payload.len());
                    let bit = 1u8 << self.fault_rng.random_range(0..8u32);
                    let mut bytes = m.payload.to_vec();
                    bytes[idx] ^= bit;
                    m.payload = bytes.into();
                }
            }
        }
        if f.reorder_jitter > 0 {
            for d in delays.iter_mut() {
                *d += self.fault_rng.random_range(0..=f.reorder_jitter);
            }
        }
        if delays.len() > 1 {
            // independent latency for the duplicate copy
            delays[1] = self.rng.random_range(self.latency.0..=self.latency.1)
                + if f.reorder_jitter > 0 {
                    self.fault_rng.random_range(0..=f.reorder_jitter)
                } else {
                    0
                };
        }
        let last = delays.len() - 1;
        let now = self.now;
        for (i, delay) in delays.clone().into_iter().enumerate() {
            let m = if i == last {
                std::mem::replace(&mut msg, ProtocolMsg::Request { wants: Vec::new() })
            } else {
                msg.clone()
            };
            self.schedule(
                now + delay,
                Delivery {
                    at: now + delay,
                    from,
                    to,
                    msg: m,
                },
            );
        }
        true
    }
}
