//! Acceptance: a 4-daemon cluster driven through a bidirectional
//! partition and a SIGKILL + checkpoint-restore cycle reconverges
//! through the real repair protocol over real sockets — equal solid
//! ledgers, quiescent repair counters, byte-agreeing archives, and a
//! conformance-invariant-clean replica rebuilt from *every* daemon's
//! archive. The run is reproducible from its seeded [`ChaosPlan`].

use lt_conformance::check_ledger_invariants;
use lt_net::{
    default_node_bin, run_soak, ChaosPlan, KillEvent, LinkChaos, LinkFault, Preset, SoakConfig,
    ORPHAN_CAP,
};
use std::path::PathBuf;
use tangle_gossip::{Peer, ReceiveOutcome, Recovery};

fn node_bin() -> PathBuf {
    option_env!("CARGO_BIN_EXE_lt-node")
        .map(PathBuf::from)
        .unwrap_or_else(default_node_bin)
}

#[test]
fn four_daemon_soak_reconverges_through_repair() {
    const NODES: usize = 4;
    const SEED: u64 = 42;
    // Hand-built schedule: cut 1↔2 both ways for 1.4s mid-run, and
    // SIGKILL daemon 3 while the partition is up, restoring it from its
    // periodic checkpoint 1.1s later on the same listen address.
    let plan = ChaosPlan {
        seed: 11,
        links: vec![LinkChaos {
            a: 1,
            b: 2,
            bidirectional: true,
            from_ms: 800,
            until_ms: 2200,
            fault: LinkFault::Partition,
        }],
        kills: vec![KillEvent {
            daemon: 3,
            at_ms: 1500,
            restore_at_ms: 2600,
            recovery: Recovery::FromCheckpoint,
        }],
    };
    plan.validate(NODES).expect("plan is well-formed");

    let dir = std::env::temp_dir().join(format!("lt-soak-{}", std::process::id()));
    let mut cfg = SoakConfig::new(NODES, SEED, 6_000, 0, &dir);
    cfg.chaos = plan.clone();
    let (report, archives) = run_soak(&node_bin(), &cfg).expect("soak run");

    assert_eq!(report.kills, 1, "supervisor executed the kill");
    assert_eq!(report.respawns, 1, "supervisor executed the restore");
    assert!(report.published > 0, "traffic flowed during the chaos");
    assert!(
        report.converged,
        "cluster failed to reconverge after the heal: {report:?}"
    );
    assert!(report.archives_agree, "final archives diverged");
    assert!(
        report.repair_quiescent,
        "repair counters kept growing after convergence"
    );
    assert_eq!(archives.len(), NODES);

    // rebuild a replica from EVERY daemon's archive and run the full
    // conformance invariant suite over each
    let p = Preset {
        nodes: NODES,
        seed: SEED,
    };
    let genesis = p.genesis();
    for (i, archive) in archives.iter().enumerate() {
        assert_eq!(
            archive.len() + 1,
            report.final_len as usize,
            "daemon {i} archive length"
        );
        let mut rebuilt = Peer::new(0, &genesis, 0).with_orphan_cap(ORPHAN_CAP);
        for msg in archive {
            assert_eq!(
                rebuilt.receive(msg),
                ReceiveOutcome::Accepted,
                "daemon {i} archive replay"
            );
        }
        check_ledger_invariants(rebuilt.replica(), &p.sim_cfg(), SEED)
            .unwrap_or_else(|v| panic!("daemon {i} ledger violates invariants: {v:?}"));
    }

    // the report carries the executed plan as a replay artifact
    let json = report.to_json();
    assert!(json.contains("\"converged\": true"));
    assert_eq!(ChaosPlan::from_json(&plan.to_json()).unwrap(), plan);

    std::fs::remove_dir_all(&dir).ok();
}

/// The rolling generator is a pure function of `(nodes, horizon, seed)`
/// — the property that makes a soak run replayable from three numbers —
/// and its plans survive a JSON roundtrip bit-for-bit.
#[test]
fn rolling_plans_are_deterministic_and_roundtrip() {
    let a = ChaosPlan::rolling(4, 60_000, 7);
    let b = ChaosPlan::rolling(4, 60_000, 7);
    assert_eq!(a, b);
    assert!(!a.is_benign(), "a minute of chaos schedules faults");
    assert!(!a.kills.is_empty(), "a minute of chaos schedules kills");
    a.validate(4).expect("generated plans are well-formed");
    let c = ChaosPlan::rolling(4, 60_000, 8);
    assert_ne!(a, c, "different seeds, different schedules");
    assert_eq!(ChaosPlan::from_json(&a.to_json()).unwrap(), a);
}
