//! Cross-executor, cross-process conformance: the same scripted schedule
//! driven through (a) the round simulator, (b) the in-process gossip
//! executor, and (c) a real 3-daemon localhost cluster must produce the
//! same ledger — byte-identical wire archives, bit-identical consensus
//! evaluation — and the networked ledger must satisfy every structural
//! invariant the conformance checker knows.

use learning_tangle::Simulation;
use lt_conformance::check_ledger_invariants;
use lt_net::{default_node_bin, Cluster, Preset, ORPHAN_CAP};
use std::path::PathBuf;
use tangle_gossip::learn::GossipLearning;
use tangle_gossip::{Latency, NetworkConfig, Peer, ReceiveOutcome, Topology, TxMessage};
use tinynn::rng::derive;

const NODES: usize = 3;
const SEED: u64 = 7;
const EVAL_SEED: u64 = 1;
/// The scripted activation schedule: entry `k` activates that peer at
/// global slot `k + 1`.
const SCHEDULE: [usize; 9] = [0, 1, 2, 2, 0, 1, 1, 2, 0];

fn preset() -> Preset {
    Preset {
        nodes: NODES,
        seed: SEED,
    }
}

fn node_bin() -> PathBuf {
    // resolved by cargo for integration tests; default_node_bin() is the
    // fallback for standalone harness use
    option_env!("CARGO_BIN_EXE_lt-node")
        .map(PathBuf::from)
        .unwrap_or_else(default_node_bin)
}

/// Wire-encode an archive for byte comparison.
fn encode_archive(msgs: &[TxMessage]) -> Vec<Vec<u8>> {
    msgs.iter().map(|m| m.encode().to_vec()).collect()
}

/// Run the schedule on the in-process gossip executor in lockstep (full
/// drain between activations). Returns every peer's archive and the
/// consensus evaluation bits.
fn gossip_run() -> (Vec<Vec<TxMessage>>, (u32, u32)) {
    let p = preset();
    let net_cfg = NetworkConfig {
        topology: Topology::FullMesh,
        latency: Latency { min: 1, max: 2 },
        loss: 0.0,
        pow_difficulty: 0,
        seed: derive(SEED, 0x6055),
        orphan_cap: ORPHAN_CAP,
    };
    let mut gl = GossipLearning::new(p.dataset(), p.sim_cfg(), net_cfg, Preset::build);
    for &peer in &SCHEDULE {
        gl.activate(peer);
        gl.network_mut().run_to_quiescence();
    }
    let archives = (0..NODES)
        .map(|i| gl.network().peer(i).export_messages())
        .collect();
    let (loss, acc) = gl.evaluate_consensus(0, EVAL_SEED);
    (archives, (loss.to_bits(), acc.to_bits()))
}

#[test]
fn daemons_agree_with_in_process_executors() {
    // --- executor (a): the round simulator, scripted one node per round
    let p = preset();
    let mut sim = Simulation::new(p.dataset(), p.sim_cfg(), Preset::build);
    for &peer in &SCHEDULE {
        sim.round_with_nodes(&[peer]);
    }
    let sim_eval = sim.evaluate(EVAL_SEED);

    // --- executor (b): the in-process gossip executor in lockstep
    let (gossip_archives, gossip_eval) = gossip_run();
    for (i, a) in gossip_archives.iter().enumerate() {
        assert_eq!(
            encode_archive(a),
            encode_archive(&gossip_archives[0]),
            "gossip replica {i} diverged"
        );
    }
    let archive = &gossip_archives[0];

    // --- executor (c): three lt-node daemons over localhost TCP
    let mut cluster = Cluster::spawn(&node_bin(), NODES, SEED, 0).expect("cluster up");
    let report = cluster.lockstep(&SCHEDULE).expect("lockstep run");
    assert_eq!(report.activations, SCHEDULE.len());
    let daemon_archives = cluster.archives().expect("archives");
    let daemon_evals = cluster
        .evaluate(SCHEDULE.len() as u64, EVAL_SEED)
        .expect("evals");
    cluster.shutdown().expect("clean shutdown");

    // every daemon replica is byte-identical with the gossip executor
    let want = encode_archive(archive);
    assert_eq!(want.len(), report.final_len - 1);
    for (i, a) in daemon_archives.iter().enumerate() {
        assert_eq!(
            encode_archive(a),
            want,
            "daemon {i} archive diverged from the in-process executor"
        );
    }

    // the gossip/daemon ledger matches the round simulator's tangle:
    // same insertion order, same structure, same parameter bytes
    let tangle = sim.tangle();
    assert_eq!(tangle.len(), archive.len() + 1, "sim ledger size");
    // content id of each insertion index (0 = genesis)
    let mut cid_of_index = vec![p.genesis().content_id()];
    cid_of_index.extend(archive.iter().map(|m| m.content_id()));
    for (j, msg) in archive.iter().enumerate() {
        let tx = &tangle.transactions()[j + 1];
        assert_eq!(tx.issuer, msg.issuer, "issuer of tx {j}");
        assert_eq!(tx.round, msg.slot, "slot of tx {j}");
        let sim_parents: Vec<_> = tx.parents.iter().map(|p| cid_of_index[p.index()]).collect();
        let mut msg_parents = msg.parents.clone();
        // the ledger collapses duplicate parents at insertion
        msg_parents.dedup();
        assert_eq!(sim_parents, msg_parents, "parents of tx {j}");
        let params = msg.decode_params().expect("payload decodes");
        assert_eq!(
            params.0, tx.payload.0,
            "parameter bytes of tx {j} diverged from the simulator"
        );
    }

    // consensus evaluation is bit-identical everywhere
    assert_eq!(
        gossip_eval,
        (sim_eval.loss.to_bits(), sim_eval.accuracy.to_bits()),
        "gossip vs sim evaluation"
    );
    for (i, &bits) in daemon_evals.iter().enumerate() {
        assert_eq!(bits, gossip_eval, "daemon {i} evaluation");
    }

    // rebuild a replica from the networked archive and run the full
    // structural invariant suite over it
    let mut rebuilt = Peer::new(0, &p.genesis(), 0).with_orphan_cap(ORPHAN_CAP);
    for msg in &daemon_archives[0] {
        assert_eq!(rebuilt.receive(msg), ReceiveOutcome::Accepted);
    }
    check_ledger_invariants(rebuilt.replica(), &p.sim_cfg(), SEED)
        .expect("networked ledger violates a conformance invariant");
}

/// The N-daemon harness under concurrent (non-lockstep) traffic still
/// converges, reports throughput, and its socket-level accounting is
/// self-consistent.
#[test]
fn throughput_harness_converges_and_reports() {
    let mut cluster = Cluster::spawn(&node_bin(), NODES, SEED, 0).expect("cluster up");
    let report = cluster.throughput(3).expect("throughput run");
    assert_eq!(report.activations, 3 * NODES);
    assert!(report.published > 0, "someone must publish");
    assert_eq!(report.final_len, 1 + report.published as usize);
    assert!(report.activations_per_sec() > 0.0);
    // all replicas hold the same transaction set afterwards (insertion
    // order legitimately differs between replicas under concurrency)
    let archives = cluster.archives().expect("archives");
    let mut want = encode_archive(&archives[0]);
    want.sort();
    assert_eq!(want.len(), report.published as usize);
    for a in &archives[1..] {
        let mut got = encode_archive(a);
        got.sort();
        assert_eq!(got, want);
    }
    cluster.shutdown().expect("clean shutdown");
}
