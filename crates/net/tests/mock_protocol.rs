//! Protocol state-machine tests over the deterministic mock transport:
//! flood convergence, orphan repair with retries and exponential backoff,
//! rotating neighbour selection, duplicate delivery, and fault-plan
//! determinism — all without a single socket.

use lt_net::{MockTransport, NodeProtocol};
use tangle_gossip::{ContentId, FaultPlan, ProtocolMsg, ReceiveOutcome, RepairConfig, TxMessage};
use tinynn::ParamVec;

const POW: u32 = 0;
const ORPHAN_CAP: usize = 16;

fn genesis() -> TxMessage {
    TxMessage::create(&ParamVec(vec![0.5, -0.5, 0.25]), vec![], u64::MAX, 0, POW)
}

fn mesh(n: usize) -> Vec<NodeProtocol> {
    let g = genesis();
    (0..n)
        .map(|i| {
            let mut p = NodeProtocol::new(i, &g, POW, ORPHAN_CAP);
            p.set_neighbours((0..n).filter(|&j| j != i).collect());
            p
        })
        .collect()
}

/// A transaction extending `parents`, payload varied by `k`.
fn tx(parents: Vec<ContentId>, issuer: u64, slot: u64, k: f32) -> TxMessage {
    TxMessage::create(
        &ParamVec(vec![k, k + 1.0, k - 1.0]),
        parents,
        issuer,
        slot,
        POW,
    )
}

/// Run the discrete-event loop to quiescence: interleave due repair
/// ticks with deliveries in timestamp order until neither exists.
fn drain(nodes: &mut [NodeProtocol], t: &mut MockTransport) {
    for _ in 0..100_000 {
        let next_tick = nodes.iter().filter_map(|n| n.next_wake()).min();
        let next_del = t.next_at();
        let at = match (next_del, next_tick) {
            (None, None) => return,
            (Some(d), None) => d,
            (None, Some(w)) => w,
            (Some(d), Some(w)) => d.min(w),
        };
        if next_tick.is_some_and(|w| w <= at) {
            t.advance_to(at);
            for n in nodes.iter_mut() {
                if n.next_wake().is_some_and(|w| w <= at) {
                    n.tick(at, t);
                }
            }
        } else {
            let d = t.pop_next().expect("delivery scheduled");
            let node = &mut nodes[d.to];
            node.set_now(d.at);
            node.on_message(d.from, d.msg, t);
        }
    }
    panic!("event loop did not quiesce");
}

fn archive_ids(n: &NodeProtocol) -> Vec<u64> {
    n.peer()
        .export_messages()
        .iter()
        .map(|m| m.content_id().0)
        .collect()
}

#[test]
fn flood_converges_full_mesh() {
    let mut nodes = mesh(4);
    let mut t = MockTransport::new(11, (1, 4));
    let g = nodes[0].peer().heads();
    let a = tx(g.clone(), 0, 1, 1.0);
    let b = tx(vec![a.content_id()], 1, 2, 2.0);
    assert_eq!(nodes[0].publish(a, &mut t), ReceiveOutcome::Accepted);
    drain(&mut nodes, &mut t);
    assert_eq!(nodes[1].publish(b, &mut t), ReceiveOutcome::Accepted);
    drain(&mut nodes, &mut t);
    let want = archive_ids(&nodes[0]);
    assert_eq!(want.len(), 2);
    for n in &nodes {
        assert_eq!(archive_ids(n), want, "replica {} diverged", n.id());
        assert_eq!(n.peer().orphan_count(), 0);
        assert!(n.peer().missing().is_empty());
    }
}

#[test]
fn duplicate_delivery_is_idempotent() {
    let mut nodes = mesh(2);
    let mut t = MockTransport::new(3, (1, 1));
    let a = tx(nodes[0].peer().heads(), 0, 1, 3.0);
    assert_eq!(
        nodes[1].on_message(0, ProtocolMsg::Publish(a.clone()), &mut t),
        Some(ReceiveOutcome::Accepted)
    );
    assert_eq!(
        nodes[1].on_message(0, ProtocolMsg::Publish(a), &mut t),
        Some(ReceiveOutcome::Duplicate)
    );
    assert_eq!(nodes[1].peer().len(), 2); // genesis + a
}

/// An orphaned child triggers the pull protocol: request the parent from
/// a neighbour that has it, receive the delta, and de-orphan.
#[test]
fn orphan_repair_recovers_missing_parent() {
    let mut nodes = mesh(2);
    let mut t = MockTransport::new(7, (1, 2));
    let parent = tx(nodes[0].peer().heads(), 0, 1, 4.0);
    let child = tx(vec![parent.content_id()], 0, 2, 5.0);
    // node 0 has both; node 1 sees only the child (parent "lost").
    assert_eq!(
        nodes[0].publish(parent.clone(), &mut MockTransport::new(0, (1, 1))),
        ReceiveOutcome::Accepted
    );
    assert_eq!(
        nodes[0].publish(child.clone(), &mut MockTransport::new(0, (1, 1))),
        ReceiveOutcome::Accepted
    );
    assert_eq!(
        nodes[1].on_message(0, ProtocolMsg::Publish(child), &mut t),
        Some(ReceiveOutcome::OrphanBuffered)
    );
    assert_eq!(nodes[1].peer().orphan_count(), 1);
    assert!(nodes[1].next_wake().is_some(), "repair tick scheduled");
    drain(&mut nodes, &mut t);
    assert_eq!(nodes[1].peer().orphan_count(), 0);
    assert!(nodes[1].peer().missing().is_empty());
    assert_eq!(archive_ids(&nodes[1]), archive_ids(&nodes[0]));
}

/// When no neighbour can supply the missing parent, re-requests back off
/// exponentially (`backoff_base << attempt`) and stop at `max_retries`.
#[test]
fn rerequests_back_off_and_cap() {
    let cfg = RepairConfig {
        enabled: true,
        delay: 8,
        backoff_base: 8,
        max_retries: 4,
    };
    let mut nodes = mesh(2);
    nodes[1].set_repair(cfg);
    let mut t = MockTransport::new(9, (1, 1));
    let parent = tx(nodes[0].peer().heads(), 0, 1, 6.0);
    let child = tx(vec![parent.content_id()], 0, 2, 7.0);
    let missing = parent.content_id();
    // node 0 never gets the parent either: requests go unanswered.
    nodes[1].on_message(0, ProtocolMsg::Publish(child), &mut t);
    assert_eq!(nodes[1].next_wake(), Some(cfg.delay));

    let mut requests = Vec::new();
    for _ in 0..cfg.max_retries {
        let due = nodes[1].next_wake().expect("retry pending");
        nodes[1].tick(due, &mut t);
        requests.push(due);
        // swallow the Request delivery (node 0 can't help anyway)
        while let Some(d) = t.pop_next() {
            assert!(matches!(d.msg, ProtocolMsg::Request { .. }));
            assert_eq!(d.to, 0);
        }
    }
    assert_eq!(nodes[1].attempts_for(missing), cfg.max_retries);
    assert_eq!(nodes[1].next_wake(), None, "gave up after max_retries");
    // exponential spacing: gap k→k+1 is backoff_base << (k+1)
    for (k, w) in requests.windows(2).enumerate() {
        assert_eq!(w[1] - w[0], cfg.backoff_base << (k + 1));
    }

    // Fresh evidence (an Advertise naming the missing cid) resets the
    // attempt counter and re-arms the pull.
    let now = nodes[1].now();
    nodes[1].on_message(
        0,
        ProtocolMsg::Advertise {
            heads: vec![missing],
        },
        &mut t,
    );
    assert_eq!(nodes[1].attempts_for(missing), 0);
    assert_eq!(nodes[1].next_wake(), Some(now + cfg.delay));
    // Give node 0 the parent; the re-armed pull now completes.
    nodes[0].publish(parent, &mut MockTransport::new(0, (1, 1)));
    drain(&mut nodes, &mut t);
    assert_eq!(nodes[1].peer().orphan_count(), 0);
    assert!(nodes[1].peer().missing().is_empty());
}

/// Re-request targets rotate deterministically over the neighbour list:
/// attempt `k` for cid `c` goes to `nbrs[(k + c) % len]`.
#[test]
fn rerequest_neighbour_rotation() {
    let mut nodes = mesh(4);
    let mut t = MockTransport::new(5, (1, 1));
    let parent = tx(nodes[0].peer().heads(), 0, 1, 8.0);
    let child = tx(vec![parent.content_id()], 0, 2, 9.0);
    let cid = parent.content_id();
    // node 3's neighbours are [0, 1, 2]
    nodes[3].on_message(0, ProtocolMsg::Publish(child), &mut t);
    // swallow node 3's forwards of the orphan
    while t.pop_next().is_some() {}
    let nbrs = nodes[3].neighbours().to_vec();
    for attempt in 0..3u32 {
        let due = nodes[3].next_wake().expect("retry pending");
        nodes[3].tick(due, &mut t);
        let expect = nbrs[(attempt as usize + cid.0 as usize) % nbrs.len()];
        let mut targets = Vec::new();
        while let Some(d) = t.pop_next() {
            assert!(matches!(d.msg, ProtocolMsg::Request { .. }));
            targets.push(d.to);
        }
        assert_eq!(targets, vec![expect], "attempt {attempt} target");
    }
}

/// Corrupted transaction payloads are rejected at the replica, not
/// accepted or panicked on.
#[test]
fn corrupt_in_flight_payload_is_rejected() {
    let mut nodes = mesh(2);
    let mut t = MockTransport::new(13, (1, 1));
    t.install_faults(FaultPlan {
        seed: 13,
        corrupt: 1.0,
        ..FaultPlan::default()
    });
    let a = tx(nodes[0].peer().heads(), 0, 1, 10.0);
    nodes[0].publish(a, &mut t);
    let d = t.pop_next().expect("delivery");
    let outcome = nodes[1].on_message(d.from, d.msg, &mut t).expect("tx msg");
    assert_eq!(outcome, ReceiveOutcome::Corrupt);
    assert_eq!(nodes[1].peer().len(), 1, "corrupt tx not inserted");
}

/// The same seed replays the same run — byte-identical archives and
/// identical transport accounting — under drop + duplicate + reorder
/// faults, with repair recovering every loss.
#[test]
fn faulty_run_is_deterministic_and_recovers() {
    fn run(seed: u64) -> (Vec<Vec<u64>>, u64, u64) {
        let mut nodes = mesh(3);
        let mut t = MockTransport::new(seed, (1, 6));
        t.install_faults(FaultPlan {
            seed: seed ^ 0xF417,
            drop: 0.25,
            duplicate: 0.2,
            reorder_jitter: 9,
            ..FaultPlan::default()
        });
        let mut heads = nodes[0].peer().heads();
        for slot in 1..=6u64 {
            let issuer = (slot % 3) as usize;
            let m = tx(heads.clone(), issuer as u64, slot, slot as f32);
            heads = vec![m.content_id()];
            nodes[issuer].publish(m, &mut t);
            drain(&mut nodes, &mut t);
            // anti-entropy: advertised heads re-arm any pull that gave up
            for node in nodes.iter_mut() {
                node.advertise_heads(&mut t);
            }
            drain(&mut nodes, &mut t);
        }
        let archives: Vec<Vec<u64>> = nodes.iter().map(archive_ids).collect();
        (archives, t.sent, t.dropped)
    }
    let (a1, sent1, dropped1) = run(42);
    let (a2, sent2, dropped2) = run(42);
    assert_eq!(a1, a2, "same seed, same archives");
    assert_eq!((sent1, dropped1), (sent2, dropped2), "same accounting");
    assert!(dropped1 > 0, "fault plan actually dropped something");
    // every replica holds all 6 transactions despite the losses
    for archive in &a1 {
        assert_eq!(archive.len(), 6);
    }
}
