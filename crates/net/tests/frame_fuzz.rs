//! Adversarial wire-codec tests: `decode_frame` must reject truncated,
//! bit-flipped, wrong-magic, and garbage inputs with an `Err` — never a
//! panic, and never an allocation driven by an attacker-controlled
//! length prefix.

use lt_net::{decode_frame, encode_frame, FrameError, WireMsg, MAX_PAYLOAD};
use proptest::prelude::*;
use tangle_gossip::{ContentId, TxMessage};
use tinynn::ParamVec;

/// A small pool of structurally diverse messages; `pick` selects one.
fn sample_msg(pick: usize, k: u64) -> WireMsg {
    let tx = TxMessage::create(&ParamVec(vec![k as f32, -1.5, 0.25]), vec![], k, k + 1, 0);
    match pick % 8 {
        0 => WireMsg::Hello {
            peer: k,
            genesis: k.wrapping_mul(31),
        },
        1 => WireMsg::Publish(tx),
        2 => WireMsg::Advertise {
            heads: (0..(k % 5)).map(|i| ContentId(k ^ i)).collect(),
        },
        3 => WireMsg::Request {
            wants: (0..(k % 4)).map(|i| ContentId(k + i)).collect(),
        },
        4 => WireMsg::Delta(tx),
        5 => WireMsg::Activate { slot: k },
        6 => WireMsg::Status(lt_net::StatusReport {
            len: k as u32,
            orphans: 1,
            missing: 2,
            connected: 3,
            last_slot: k,
        }),
        _ => WireMsg::Metrics {
            counters: vec![("net.frames_sent".into(), k)],
            histograms: vec![("net.rtt_us".into(), k, k * 10)],
        },
    }
}

/// Structural equality via re-encoding (TxMessage has no `Eq`).
fn same(a: &WireMsg, b: &WireMsg) -> bool {
    encode_frame(a) == encode_frame(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message round-trips byte-exactly through the codec.
    #[test]
    fn roundtrip_all_kinds(pick in 0usize..8, k in 0u64..1000) {
        let msg = sample_msg(pick, k);
        let enc = encode_frame(&msg);
        let (dec, used) = decode_frame(&enc).expect("valid frame decodes");
        prop_assert_eq!(used, enc.len());
        prop_assert!(same(&msg, &dec));
    }

    /// Any strict prefix fails with `Truncated` — never panics, never
    /// decodes.
    #[test]
    fn truncation_always_errs(pick in 0usize..8, k in 0u64..1000, cut in 0usize..10_000) {
        let enc = encode_frame(&sample_msg(pick, k));
        let cut = cut % enc.len();
        prop_assert!(matches!(decode_frame(&enc[..cut]), Err(FrameError::Truncated)));
    }

    /// Flipping any single bit of a valid frame is rejected (magic,
    /// version, kind, length, payload, or checksum — all covered).
    #[test]
    fn bit_flips_always_err(pick in 0usize..8, k in 0u64..1000, pos in 0usize..10_000, bit in 0u8..8) {
        let mut enc = encode_frame(&sample_msg(pick, k));
        let pos = pos % enc.len();
        enc[pos] ^= 1 << bit;
        // The checksum covers the kind byte and payload; magic, version,
        // and length flips are caught structurally. No flip survives.
        prop_assert!(decode_frame(&enc).is_err(), "corrupted frame decoded");
    }

    /// Random garbage never panics; it errs unless it happens to spell a
    /// full valid frame (vanishingly unlikely with a 64-bit checksum).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        let _ = decode_frame(&bytes);
    }

    /// A hostile length prefix is rejected *before* any allocation: a
    /// 10-byte header claiming a huge payload errs with `TooLarge`
    /// rather than attempting to reserve it.
    #[test]
    fn oversized_length_rejected_before_allocation(extra in 1u64..u32::MAX as u64) {
        let claimed = MAX_PAYLOAD as u64 + extra;
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTNT");
        buf.push(1); // version
        buf.push(2); // kind: Advertise
        buf.extend_from_slice(&(claimed as u32).to_le_bytes());
        if claimed <= u32::MAX as u64 {
            prop_assert!(matches!(
                decode_frame(&buf),
                Err(FrameError::TooLarge(n)) if n == claimed
            ));
        }
    }

    /// Hostile element counts inside a payload (e.g. an `Advertise`
    /// claiming 2^32-ish heads in a 20-byte body) are rejected by the
    /// count guard, not by attempting the allocation.
    #[test]
    fn hostile_element_count_rejected(count in 1_000_000u32..u32::MAX) {
        // body: u32 head-count with far too few bytes behind it
        let mut body = count.to_le_bytes().to_vec();
        body.extend_from_slice(&[0u8; 16]);
        let mut buf = Vec::new();
        buf.extend_from_slice(b"LTNT");
        buf.push(1);
        buf.push(2); // Advertise
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&forge_check(2, &body).to_le_bytes());
        prop_assert!(decode_frame(&buf).is_err());
    }
}

/// The wire checksum (FNV-1a over kind then payload), reproduced here so
/// the hostile-count test can forge a frame whose *checksum* is valid but
/// whose body lies about its element count.
fn forge_check(kind: u8, payload: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in std::iter::once(kind).chain(payload.iter().copied()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
