//! Adversarial daemon-checkpoint tests: whatever instant a SIGKILL lands,
//! `--restore` must come back with a valid *prefix* of the killed
//! daemon's history — or start empty and let the repair protocol refill
//! it. Decoding must never panic, never trust a damaged file, and never
//! serve diverged history. Same idiom as `crates/core/tests/persist_fuzz.rs`,
//! aimed at the `LTND` envelope instead of the `LTGL` ledger file.

use lt_net::daemon::{
    daemon_checkpoint_bytes, decode_daemon_checkpoint, load_checkpoint, write_checkpoint_atomic,
    DAEMON_CKPT_MAGIC, DAEMON_CKPT_VERSION,
};
use lt_net::{Preset, ORPHAN_CAP};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use tangle_gossip::{Peer, ReceiveOutcome, TxMessage};
use tinynn::ParamVec;

fn preset() -> Preset {
    Preset { nodes: 3, seed: 7 }
}

/// A peer that accepted `n` transactions beyond genesis, plus those
/// messages in insertion order (the ground-truth history).
fn peer_with(n: usize) -> (Peer, Vec<TxMessage>) {
    let p = preset();
    let genesis = p.genesis();
    let mut peer = Peer::new(0, &genesis, 0).with_orphan_cap(ORPHAN_CAP);
    let mut msgs = Vec::new();
    let mut prev = genesis.content_id();
    for i in 0..n as u64 {
        let m = TxMessage::create(
            &ParamVec(vec![i as f32, -1.0]),
            vec![prev, genesis.content_id()],
            i % 3,
            i + 1,
            0,
        );
        assert_eq!(peer.receive(&m), ReceiveOutcome::Accepted);
        prev = m.content_id();
        msgs.push(m);
    }
    (peer, msgs)
}

/// One valid checkpoint, shared across cases (building the preset peer
/// per case would dominate the fuzz time).
fn sample_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (peer, _) = peer_with(5);
        daemon_checkpoint_bytes(&peer, 5)
    })
}

fn encode_all(msgs: &[TxMessage]) -> Vec<Vec<u8>> {
    msgs.iter().map(|m| m.encode().to_vec()).collect()
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ltnd-fuzz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of a valid checkpoint fails to decode — cleanly.
    /// This is every possible torn write, had the write not been atomic.
    #[test]
    fn truncation_always_errs(cut in 0usize..100_000) {
        let b = sample_bytes();
        let cut = cut % b.len();
        prop_assert!(decode_daemon_checkpoint(0, &b[..cut], 0, ORPHAN_CAP).is_err());
    }

    /// Any single bit flip is rejected: the whole-file FNV-1a trailer
    /// covers everything before it, and each `h -> (h ^ b) * prime` step
    /// is injective, so a body flip always changes the final hash while
    /// a trailer flip leaves the body hash behind the stored value.
    #[test]
    fn bit_flips_always_err_never_panic(pos in 0usize..100_000, bit in 0u8..8) {
        let mut b = sample_bytes().to_vec();
        let pos = pos % b.len();
        b[pos] ^= 1 << bit;
        prop_assert!(decode_daemon_checkpoint(0, &b, 0, ORPHAN_CAP).is_err());
    }

    /// Random garbage — with or without a genuine-looking header stapled
    /// on — is rejected without panicking and without a length-field
    /// driven allocation.
    #[test]
    fn garbage_always_errs(
        tail in prop::collection::vec(any::<u8>(), 0..256),
        with_header in any::<bool>(),
    ) {
        let mut b = Vec::new();
        if with_header {
            b.extend_from_slice(DAEMON_CKPT_MAGIC);
            b.push(DAEMON_CKPT_VERSION);
        }
        b.extend_from_slice(&tail);
        prop_assert!(decode_daemon_checkpoint(0, &b, 0, ORPHAN_CAP).is_err());
    }

    /// A valid checkpoint restores the exact ledger it snapshotted:
    /// same length, same slot cursor, byte-identical archive.
    #[test]
    fn roundtrip_preserves_history(n in 0usize..6, slot in 0u64..1_000_000) {
        let (peer, msgs) = peer_with(n);
        let b = daemon_checkpoint_bytes(&peer, slot);
        let (back, got_slot) = decode_daemon_checkpoint(0, &b, 0, ORPHAN_CAP).unwrap();
        prop_assert_eq!(got_slot, slot);
        prop_assert_eq!(back.len(), n + 1);
        prop_assert_eq!(encode_all(&back.export_messages()), encode_all(&msgs));
    }

    /// Simulated SIGKILL mid-checkpoint: the atomic tmp+rename protocol
    /// means the real file still holds the *previous* checkpoint while
    /// the tmp holds an arbitrary prefix of the new one. Restore must
    /// ignore the tmp and come back with the older — valid — prefix of
    /// history, never a torn or diverged ledger.
    #[test]
    fn kill_during_checkpoint_restores_previous_prefix(
        k in 0usize..4,
        extra in 1usize..4,
        cut in 0usize..100_000,
    ) {
        let (full_peer, msgs) = peer_with(k + extra);
        let (old_peer, _) = peer_with(k); // same deterministic history
        let old = daemon_checkpoint_bytes(&old_peer, k as u64);
        let new = daemon_checkpoint_bytes(&full_peer, (k + extra) as u64);

        let path = scratch(&format!("kill-{k}-{extra}.ltnd"));
        write_checkpoint_atomic(&path, &old).unwrap();
        // the torn tmp a mid-write SIGKILL leaves behind
        let tmp = path.with_extension("ltnd.tmp");
        std::fs::write(&tmp, &new[..cut % new.len()]).unwrap();

        let (back, slot) = load_checkpoint(&path, 0, &preset().genesis()).unwrap();
        prop_assert_eq!(slot, k as u64);
        prop_assert_eq!(back.len(), k + 1);
        // the restored archive is a byte-exact prefix of the full history
        prop_assert_eq!(encode_all(&back.export_messages()), encode_all(&msgs[..k]));
    }

    /// Had a torn write reached the real file anyway (no atomicity), the
    /// decode-or-empty restore path errs cleanly — the daemon then starts
    /// from genesis and lets pull-based repair refill the ledger.
    #[test]
    fn torn_file_fails_open(cut in 0usize..100_000) {
        let b = sample_bytes();
        let cut = cut % b.len(); // strictly shorter
        let path = scratch(&format!("torn-{cut}.ltnd"));
        std::fs::write(&path, &b[..cut]).unwrap();
        prop_assert!(load_checkpoint(&path, 0, &preset().genesis()).is_err());
    }
}

/// Missing checkpoint files surface as a clean error (the daemon's
/// `--restore` treats it as cold start), not a panic.
#[test]
fn missing_file_errs_cleanly() {
    let path = scratch("never-written.ltnd");
    assert!(load_checkpoint(&path, 0, &preset().genesis()).is_err());
}
