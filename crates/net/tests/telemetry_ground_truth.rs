//! Ground-truth telemetry: the `net.*` counters must equal independent
//! socket- and queue-level accounting, not merely move. Frames swallowed
//! on the peer-down path are `net.rejected`, frames swallowed on queue
//! overflow are `net.dropped`, frames accepted for delivery and then
//! drained into a dead socket are `net.conn_lost`, and after a drained
//! run every data frame one daemon sent was received by exactly one
//! other daemon.

use lt_net::daemon::{spawn_data_writer, Router};
use lt_net::{default_node_bin, encode_frame, Cluster, SendQueue, WireMsg};
use lt_telemetry::{MemorySink, Telemetry};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tangle_gossip::{ContentId, ProtocolMsg, Transport};

fn node_bin() -> PathBuf {
    option_env!("CARGO_BIN_EXE_lt-node")
        .map(PathBuf::from)
        .unwrap_or_else(default_node_bin)
}

/// Queue overflow and peer-down sends are counted, one for one, never
/// silently swallowed.
#[test]
fn router_counts_every_swallowed_frame() {
    let telemetry = Telemetry::new(MemorySink::new());
    let mut router = Router::new(telemetry.clone());
    // a live peer whose queue holds 2 frames and is never drained
    router.attach(1, 0, SendQueue::new(2));

    let msg = WireMsg::Advertise {
        heads: vec![ContentId(7)],
    };
    let mut accepted = 0u64;
    let mut overflowed = 0u64;
    for _ in 0..5 {
        if router.send_wire(1, &msg) {
            accepted += 1;
        } else {
            overflowed += 1;
        }
    }
    assert_eq!((accepted, overflowed), (2, 3));
    assert_eq!(telemetry.counter_value("net.dropped"), overflowed);
    assert_eq!(telemetry.counter_value("net.rejected"), 0);

    // sends to a peer with no live connection are rejected, not dropped
    let mut rejected = 0u64;
    for _ in 0..4 {
        if !router.send_wire(9, &msg) {
            rejected += 1;
        }
    }
    assert_eq!(rejected, 4);
    assert_eq!(telemetry.counter_value("net.rejected"), rejected);
    assert_eq!(telemetry.counter_value("net.dropped"), overflowed);

    // the Transport impl feeds the same accounting
    let before = telemetry.counter_value("net.rejected");
    assert!(!Transport::send(
        &mut router,
        0,
        9,
        ProtocolMsg::Request { wants: vec![] }
    ));
    assert_eq!(telemetry.counter_value("net.rejected"), before + 1);
}

/// Every frame accepted into a send queue lands in *exactly one* of
/// `net.frames_sent` (written to a live socket) or `net.conn_lost`
/// (drained after the socket died) — the write-to-dead-socket
/// complement of `net.dropped`, which is queue overflow on a live
/// connection. Driven against a real TCP peer that disappears
/// mid-stream.
#[test]
fn dead_socket_frames_are_counted_conn_lost() {
    use std::io::Read as _;
    use std::net::TcpListener;

    let telemetry = Telemetry::new(MemorySink::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = std::net::TcpStream::connect(addr).expect("connect");
    let (mut server, _) = listener.accept().expect("accept");

    let queue = SendQueue::new(1024);
    let writer = spawn_data_writer(client, queue.clone(), telemetry.clone());
    let frame = encode_frame(&WireMsg::Advertise {
        heads: vec![ContentId(7)],
    });

    // live phase: frames flow and are read by the peer
    const LIVE: u64 = 3;
    for _ in 0..LIVE {
        assert!(queue.push(frame.clone()));
    }
    let mut got = vec![0u8; frame.len() * LIVE as usize];
    server.read_exact(&mut got).expect("peer reads live frames");

    // the peer dies mid-stream; keep pushing until the writer notices
    // (first write after the RST fails, every drain after that is a
    // conn_lost). The kernel may buffer a few frames as "sent" first —
    // the ledger below is exact regardless.
    drop(server);
    let mut pushed = LIVE;
    let deadline = Instant::now() + Duration::from_secs(10);
    while telemetry.counter_value("net.conn_lost") == 0 {
        assert!(
            Instant::now() < deadline,
            "writer never observed the dead socket"
        );
        for _ in 0..4 {
            if queue.push(frame.clone()) {
                pushed += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    queue.close();
    writer.join().expect("writer exits");

    let sent = telemetry.counter_value("net.frames_sent");
    let lost = telemetry.counter_value("net.conn_lost");
    assert!(sent >= LIVE, "the live frames were counted sent");
    assert!(lost > 0, "the dead-socket frames were counted lost");
    assert_eq!(
        sent + lost,
        pushed,
        "every accepted frame is sent or conn_lost, never both or neither"
    );
    assert_eq!(telemetry.counter_value("net.dropped"), 0);
}

type Metrics = (Vec<(String, u64)>, Vec<(String, u64, u64)>);

fn counters_of(metrics: &Metrics) -> BTreeMap<&str, u64> {
    metrics.0.iter().map(|(k, v)| (k.as_str(), *v)).collect()
}

/// After a drained 2-daemon run, the daemons' socket counters match: the
/// data frames (and bytes) daemon 0 sent are exactly the data frames
/// daemon 1 received, and vice versa. Pings are off, so the counts are
/// also deterministic in total.
#[test]
fn socket_counters_match_peer_accounting() {
    let mut cluster = Cluster::spawn(&node_bin(), 2, 11, 0).expect("cluster up");
    cluster.lockstep(&[0, 1, 0, 1]).expect("lockstep");

    // absorb frames still in flight (sent but not yet read by the peer)
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = cluster.metrics().expect("metrics");
        let a = counters_of(&metrics[0]);
        let b = counters_of(&metrics[1]);
        let symmetric = |x: &BTreeMap<&str, u64>, y: &BTreeMap<&str, u64>| {
            x.get("net.frames_sent") == y.get("net.frames_recv")
                && x.get("net.bytes_sent") == y.get("net.bytes_recv")
        };
        if symmetric(&a, &b) && symmetric(&b, &a) {
            // ground truth: traffic actually flowed, and none of it was
            // swallowed uncounted
            assert!(a["net.frames_sent"] > 0);
            assert!(b["net.frames_sent"] > 0);
            for m in [&a, &b] {
                assert_eq!(m.get("net.dropped"), None, "no queue overflow expected");
                assert_eq!(m.get("net.recv_errors"), None, "no decode errors expected");
                // control traffic is accounted separately from data
                assert!(m["net.ctl_frames_recv"] > 0);
            }
            break;
        }
        assert!(
            Instant::now() < deadline,
            "socket counters never reconciled: {a:?} vs {b:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown().expect("clean shutdown");
}
