#!/usr/bin/env bash
# Long-haul chaos soak: N lt-node daemons under a rolling, seeded fault
# schedule — link partitions, latency/jitter, byte corruption, mid-stream
# resets, plus supervised SIGKILL + checkpoint-restore cycles. After the
# schedule burns out the cluster must reconverge through the real repair
# protocol: equal solid ledgers, quiescent repair counters, byte-agreeing
# archives that pass the conformance invariant suite. Results land in
# $OUT/soak.json (with the embedded ChaosPlan as the replay artifact).
#
# usage: scripts/soak_net.sh [nodes] [soak-secs] [seed]
#   NODES / SOAK_SECS / SEED / CHAOS_SEED / OUT / PROFILE env vars
#   override positionals.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-${1:-4}}"
SOAK_SECS="${SOAK_SECS:-${2:-60}}"
SEED="${SEED:-${3:-42}}"
CHAOS_SEED="${CHAOS_SEED:-7}"
OUT="${OUT:-results}"
PROFILE="${PROFILE:-release}"

if [ "$PROFILE" = release ]; then FLAG=--release; else FLAG=; fi

echo "== building lt-node + lt-experiments ($PROFILE) =="
cargo build $FLAG -p lt-net --bin lt-node -p lt-experiments --bin lt-experiments

BIN_DIR="target/$PROFILE"
export LT_NODE_BIN="$BIN_DIR/lt-node"

echo "== soak: $NODES daemons, ${SOAK_SECS}s, seed $SEED, chaos seed $CHAOS_SEED =="
"$BIN_DIR/lt-experiments" net "--nodes=$NODES" "--soak-secs=$SOAK_SECS" \
  "--seed=$SEED" "--chaos-seed=$CHAOS_SEED" "--out=$OUT"
