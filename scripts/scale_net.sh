#!/usr/bin/env bash
# Launch N local lt-node daemons and drive them: first a scripted
# lockstep schedule checked byte-for-byte against the in-process gossip
# executor, then sustained publish traffic with throughput / frame /
# RTT reporting. Results land in $OUT/net.json.
#
# usage: scripts/scale_net.sh [nodes] [activations-per-node] [seed]
#   NODES / ROUNDS / SEED / OUT / PROFILE env vars override positionals.
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-${1:-5}}"
ROUNDS="${ROUNDS:-${2:-20}}"
SEED="${SEED:-${3:-42}}"
OUT="${OUT:-results}"
PROFILE="${PROFILE:-release}"

if [ "$PROFILE" = release ]; then FLAG=--release; else FLAG=; fi

echo "== building lt-node + lt-experiments ($PROFILE) =="
cargo build $FLAG -p lt-net --bin lt-node -p lt-experiments --bin lt-experiments

BIN_DIR="target/$PROFILE"
export LT_NODE_BIN="$BIN_DIR/lt-node"

echo "== scale run: $NODES daemons, $ROUNDS activations/daemon, seed $SEED =="
"$BIN_DIR/lt-experiments" net "--nodes=$NODES" "--rounds=$ROUNDS" "--seed=$SEED" "--out=$OUT"
