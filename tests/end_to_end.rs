//! End-to-end integration tests across the whole workspace, exercised
//! through the `tangle-learning` facade.

use tangle_learning::baseline::{FedAvg, FedAvgConfig};
use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::async_sim::run_async;
use tangle_learning::learning::node::Node;
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;
use tangle_learning::nn::Sequential;

fn dataset(users: usize, seed: u64) -> tangle_learning::data::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (24, 36),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        seed,
    )
}

fn build() -> Sequential {
    mlp(8, &[16], 4, &mut seeded(1))
}

fn quick_cfg(nodes: usize, seed: u64) -> SimConfig {
    SimConfig {
        nodes_per_round: nodes,
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    }
}

/// The decentralized tangle must reach an accuracy band comparable to the
/// centralized FedAvg baseline on the same data (the paper's Fig. 3 story:
/// "slightly inferior but still acceptable").
#[test]
fn tangle_tracks_fedavg_within_band() {
    let data = dataset(16, 3);
    let rounds = 25;

    let mut fa = FedAvg::new(
        &data,
        FedAvgConfig {
            nodes_per_round: 6,
            lr: 0.15,
            seed: 5,
            ..FedAvgConfig::default()
        },
        build,
    );
    for _ in 0..rounds {
        fa.round();
    }
    let (_, fedavg_acc) = fa.evaluate(1.0, 0);
    drop(fa);

    let mut sim = Simulation::new(data, quick_cfg(6, 5), build);
    for _ in 0..rounds {
        sim.round();
    }
    let tangle_acc = sim.evaluate(0).accuracy;

    assert!(fedavg_acc > 0.8, "baseline failed to learn: {fedavg_acc}");
    assert!(
        tangle_acc > fedavg_acc - 0.15,
        "tangle too far behind fedavg: {tangle_acc} vs {fedavg_acc}"
    );
}

/// Two identically-seeded simulations must produce identical ledgers and
/// identical consensus models.
#[test]
fn deterministic_replay() {
    let run = || {
        let mut sim = Simulation::new(dataset(10, 7), quick_cfg(5, 11), build);
        for _ in 0..8 {
            sim.round();
        }
        (
            sim.tangle().len(),
            sim.tangle().tips(),
            sim.consensus_params(),
        )
    };
    let (len_a, tips_a, params_a) = run();
    let (len_b, tips_b, params_b) = run();
    assert_eq!(len_a, len_b);
    assert_eq!(tips_a, tips_b);
    assert_eq!(params_a, params_b);
}

/// The asynchronous simulator must produce a ledger on which the same
/// consensus extraction yields a working model — rounds are a convenience,
/// not a correctness requirement (paper §IV).
#[test]
fn async_ledger_supports_consensus_extraction() {
    let data = dataset(10, 9);
    let nodes: Vec<Node> = data
        .clients
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, c)| Node::honest(i, c))
        .collect();
    let cfg = quick_cfg(5, 13);
    let run = run_async(&nodes, &cfg, build, 2, 30);
    assert!(run.tangle.len() >= 30);

    // Extract consensus by confidence × rating, as in the round-based path.
    let analysis = tangle_learning::ledger::TangleAnalysis::compute(&run.tangle);
    let walk = tangle_learning::ledger::walk::RandomWalk::new(cfg.hyper.alpha);
    let conf = analysis.walk_confidence(&run.tangle, &walk, 16, 1);
    let top = analysis.choose_reference(&conf, 3);
    let payloads: Vec<&tangle_learning::nn::ParamVec> = top
        .iter()
        .map(|id| run.tangle.get(*id).payload.as_ref())
        .collect();
    let consensus = tangle_learning::nn::ParamVec::average(&payloads);

    let mut model = build();
    let clients: Vec<&tangle_learning::data::ClientData> = data.clients.iter().collect();
    let (_, acc) = tangle_learning::baseline::evaluate_params(&mut model, &consensus, &clients);
    assert!(
        acc > 0.5,
        "async-trained consensus should beat chance clearly: {acc}"
    );
}

/// Round-based and asynchronous training must agree qualitatively: both
/// converge on the same task from the same genesis.
#[test]
fn sync_and_async_agree_qualitatively() {
    let data = dataset(10, 21);
    // Sync run.
    let mut sim = Simulation::new(data.clone(), quick_cfg(5, 17), build);
    for _ in 0..10 {
        sim.round();
    }
    let sync_acc = sim.evaluate(0).accuracy;
    // Async run with a similar transaction budget.
    let nodes: Vec<Node> = data
        .clients
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, c)| Node::honest(i, c))
        .collect();
    let target = sim.tangle().len();
    let run = run_async(&nodes, &quick_cfg(5, 17), build, 1, target);
    let analysis = tangle_learning::ledger::TangleAnalysis::compute(&run.tangle);
    let walk = tangle_learning::ledger::walk::RandomWalk::new(0.5);
    let conf = analysis.walk_confidence(&run.tangle, &walk, 16, 2);
    let top = analysis.choose_reference(&conf, 3);
    let payloads: Vec<&tangle_learning::nn::ParamVec> = top
        .iter()
        .map(|id| run.tangle.get(*id).payload.as_ref())
        .collect();
    let consensus = tangle_learning::nn::ParamVec::average(&payloads);
    let mut model = build();
    let clients: Vec<&tangle_learning::data::ClientData> = data.clients.iter().collect();
    let (_, async_acc) =
        tangle_learning::baseline::evaluate_params(&mut model, &consensus, &clients);
    assert!(
        (sync_acc - async_acc).abs() < 0.35,
        "sync {sync_acc} and async {async_acc} diverged wildly"
    );
}

/// The tip population must stay bounded as the network runs (paper §III-C).
#[test]
fn tip_count_remains_bounded() {
    let mut sim = Simulation::new(dataset(14, 31), quick_cfg(7, 19), build);
    let mut max_tips = 0;
    for _ in 0..20 {
        let s = sim.round();
        max_tips = max_tips.max(s.tips);
    }
    assert!(
        max_tips <= 4 * 7,
        "tips should stay O(nodes_per_round): {max_tips}"
    );
}

/// Transactions carry round and issuer metadata usable for audits.
#[test]
fn ledger_metadata_is_complete() {
    let mut sim = Simulation::new(dataset(8, 41), quick_cfg(4, 23), build);
    for _ in 0..5 {
        sim.round();
    }
    for tx in sim.tangle().transactions().iter().skip(1) {
        assert!(tx.round >= 1 && tx.round <= 5);
        assert!((tx.issuer as usize) < sim.nodes().len());
        assert!(!tx.parents.is_empty());
        assert_eq!(tx.payload.len(), sim.consensus_params().len());
    }
}
