//! Cross-crate property-based tests (proptest) on the system's invariants.

use proptest::prelude::*;
use tangle_learning::ledger::analysis::{cumulative_weights, ratings, ConsensusView, TxClass};
use tangle_learning::ledger::{BitSet, TxId};
use tangle_learning::nn::ParamVec;

use lt_conformance::gen::tangle_from_script;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parent ids always precede child ids (the DAG is acyclic by
    /// construction) and tips are exactly the unapproved transactions.
    #[test]
    fn tangle_invariants(script in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40)) {
        let t = tangle_from_script(&script);
        // acyclicity via topological ids
        for tx in t.transactions() {
            for p in &tx.parents {
                prop_assert!(*p < tx.id);
            }
        }
        // tip characterization
        let tips = t.tips();
        for tx in t.transactions() {
            let is_tip = tips.contains(&tx.id);
            prop_assert_eq!(is_tip, t.approvers(tx.id).is_empty());
        }
        // every non-genesis transaction indirectly approves the genesis
        for tx in t.transactions().iter().skip(1) {
            prop_assert!(t.approves(tx.id, t.genesis()));
        }
    }

    /// Cumulative weight and rating are consistent with brute-force
    /// reachability, and the genesis dominates both extremes.
    #[test]
    fn weights_match_bruteforce(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30)) {
        let t = tangle_from_script(&script);
        let w = cumulative_weights(&t);
        let r = ratings(&t);
        let n = t.len();
        for i in 0..n {
            let id = TxId(i as u32);
            // brute force: count descendants and ancestors
            let ancestors = t.past_cone(id).len();
            let mut descendants = 0;
            for j in 0..n {
                if t.approves(TxId(j as u32), id) {
                    descendants += 1;
                }
            }
            prop_assert_eq!(r[i] as usize, ancestors, "rating of {}", id);
            prop_assert_eq!(w[i] as usize, descendants + 1, "weight of {}", id);
        }
        // genesis: approved by everyone, approves nothing
        prop_assert_eq!(w[0] as usize, n);
        prop_assert_eq!(r[0], 0);
    }

    /// The Fig. 2 classification is a partition and confirmed transactions
    /// are exactly those reached from every tip.
    #[test]
    fn consensus_view_partition(script in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30)) {
        let t = tangle_from_script(&script);
        let view = ConsensusView::compute(&t);
        prop_assert_eq!(view.classes.len(), t.len());
        let tips = t.tips();
        for (i, class) in view.classes.iter().enumerate() {
            let id = TxId(i as u32);
            let reached_by_all = tips.iter().all(|&tip| tip == id || t.approves(tip, id));
            match class {
                TxClass::Genesis => prop_assert_eq!(id, t.genesis()),
                TxClass::Tip => prop_assert!(t.is_tip(id)),
                TxClass::Confirmed => {
                    prop_assert!(reached_by_all && !t.is_tip(id) && id != t.genesis())
                }
                TxClass::Pending => {
                    prop_assert!(!reached_by_all && !t.is_tip(id) && id != t.genesis())
                }
            }
        }
    }

    /// Wire codec: decode(encode(p)) == p for arbitrary finite params.
    #[test]
    fn wire_roundtrip(values in prop::collection::vec(-1e6f32..1e6, 0..200)) {
        let p = ParamVec(values);
        let enc = tangle_learning::nn::wire::encode(&p);
        let dec = tangle_learning::nn::wire::decode(&enc).unwrap();
        prop_assert_eq!(dec, p);
    }

    /// Averaging is idempotent on identical vectors and bounded by the
    /// coordinate-wise min/max of its inputs.
    #[test]
    fn averaging_bounds(
        a in prop::collection::vec(-100f32..100.0, 1..64),
        delta in prop::collection::vec(-100f32..100.0, 1..64),
    ) {
        let n = a.len().min(delta.len());
        let a = ParamVec(a[..n].to_vec());
        let b = ParamVec(a.as_slice().iter().zip(&delta[..n]).map(|(x, d)| x + d).collect());
        let same = ParamVec::average(&[&a, &a]);
        for (x, y) in same.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        let avg = ParamVec::average(&[&a, &b]);
        for i in 0..n {
            let lo = a.as_slice()[i].min(b.as_slice()[i]) - 1e-4;
            let hi = a.as_slice()[i].max(b.as_slice()[i]) + 1e-4;
            prop_assert!(avg.as_slice()[i] >= lo && avg.as_slice()[i] <= hi);
        }
    }

    /// BitSet behaves like a HashSet model under arbitrary operations.
    #[test]
    fn bitset_vs_hashset(ops in prop::collection::vec((any::<bool>(), 0usize..200), 0..200)) {
        let mut bs = BitSet::new(200);
        let mut hs = std::collections::HashSet::new();
        for (insert, idx) in ops {
            if insert {
                bs.insert(idx);
                hs.insert(idx);
            } else {
                bs.remove(idx);
                hs.remove(&idx);
            }
        }
        prop_assert_eq!(bs.count(), hs.len());
        let from_iter: std::collections::HashSet<usize> = bs.iter().collect();
        prop_assert_eq!(from_iter, hs);
    }

    /// Dirichlet partitions cover every index exactly once for any α.
    #[test]
    fn dirichlet_partition_is_exact(
        n in 1usize..200,
        users in 1usize..12,
        alpha in 0.05f64..10.0,
        seed in any::<u64>(),
    ) {
        let labels: Vec<u32> = (0..n).map(|i| (i % 5) as u32).collect();
        let mut rng = tangle_learning::nn::rng::seeded(seed);
        let parts = tangle_learning::data::partition::dirichlet_partition(&labels, 5, users, alpha, &mut rng);
        prop_assert_eq!(parts.len(), users);
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Proof-of-work solutions verify, at any difficulty we can afford.
    #[test]
    fn pow_solve_verifies(payload in any::<u64>(), difficulty in 0u32..10) {
        let nonce = tangle_learning::ledger::pow::solve(payload, difficulty);
        prop_assert!(tangle_learning::ledger::pow::verify(payload, nonce, difficulty));
    }
}
