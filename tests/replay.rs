//! Deterministic-replay regression tests: with span timings disabled, a
//! fixed seed must reproduce both the tangle structure and the telemetry
//! JSONL byte for byte.

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;
use tangle_learning::nn::Sequential;
use tangle_learning::telemetry::{Event, JsonlSink, MemorySink, Telemetry};

fn dataset() -> tangle_learning::data::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users: 8,
            samples_per_user: (24, 36),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        55,
    )
}

fn build() -> Sequential {
    mlp(8, &[12], 4, &mut seeded(5))
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        nodes_per_round: 4,
        lr: 0.15,
        local_epochs: 1,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            ..TangleHyperParams::basic()
        },
        network: None,
    }
}

/// Tangle structure fingerprint: (issuer, round, parent ids) per tx.
fn structure(sim: &Simulation<'_>) -> Vec<(u64, u64, Vec<u32>)> {
    sim.tangle()
        .transactions()
        .iter()
        .map(|tx| {
            (
                tx.issuer,
                tx.round,
                tx.parents.iter().map(|p| p.index() as u32).collect(),
            )
        })
        .collect()
}

fn run_with_jsonl(seed: u64, path: &std::path::Path) -> Vec<(u64, u64, Vec<u32>)> {
    let sink = JsonlSink::create(path).expect("create jsonl");
    let mut sim = Simulation::new(dataset(), cfg(seed), build).with_telemetry(Telemetry::new(sink));
    for _ in 0..6 {
        sim.round();
    }
    structure(&sim)
}

#[test]
fn same_seed_reproduces_tangle_and_telemetry_bytes() {
    let dir = std::env::temp_dir();
    let p1 = dir.join("lt_replay_a.jsonl");
    let p2 = dir.join("lt_replay_b.jsonl");
    let s1 = run_with_jsonl(33, &p1);
    let s2 = run_with_jsonl(33, &p2);
    assert_eq!(s1, s2, "tangle structure must replay identically");
    let b1 = std::fs::read(&p1).expect("read first jsonl");
    let b2 = std::fs::read(&p2).expect("read second jsonl");
    assert!(!b1.is_empty(), "telemetry must produce output");
    assert_eq!(b1, b2, "telemetry JSONL must be byte-identical per seed");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn different_seeds_diverge() {
    let dir = std::env::temp_dir();
    let p1 = dir.join("lt_replay_c.jsonl");
    let p2 = dir.join("lt_replay_d.jsonl");
    let s1 = run_with_jsonl(33, &p1);
    let s2 = run_with_jsonl(34, &p2);
    assert_ne!(s1, s2, "different seeds should produce different ledgers");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn telemetry_events_cover_every_round_and_publication() {
    let sink = std::sync::Arc::new(MemorySink::new());
    let mut sim =
        Simulation::new(dataset(), cfg(21), build).with_telemetry(Telemetry::new(sink.clone()));
    let rounds = 5u64;
    let mut published = 0usize;
    let mut sampled = 0usize;
    for _ in 0..rounds {
        let stats = sim.round();
        published += stats.published;
        sampled += stats.sampled;
    }
    let events = sink.events();
    let round_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Round(r) => Some(r),
            _ => None,
        })
        .collect();
    let step_events: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Step(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(
        round_events.len() as u64,
        rounds,
        "one Round event per round"
    );
    assert_eq!(
        step_events.len(),
        sampled,
        "one Step event per sampled node"
    );
    assert_eq!(
        step_events.iter().filter(|s| s.accepted).count(),
        published,
        "accepted Step events match published count"
    );
    // Round summaries agree with the simulator's own bookkeeping.
    let last = round_events.last().unwrap();
    assert_eq!(last.tangle_len, sim.tangle().len() as u64);
    assert_eq!(last.tip_count, sim.tangle().tip_count() as u64);
    assert_eq!(
        sim.telemetry().counter_value("sim.published") as usize,
        published
    );
    // The shared-context reference is reported with its score factors.
    assert!(
        round_events.iter().all(|r| !r.reference.is_empty()),
        "ideal-network rounds must report the reference set"
    );
}
