//! Integration tests of the poisoning attacks and the §III-E defense —
//! the qualitative claims behind Fig. 5 and Fig. 6, at test scale.

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::{
    assign_malicious, AttackKind, SimConfig, Simulation, TangleHyperParams,
};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;
use tangle_learning::nn::Sequential;

const PRETRAIN: u64 = 15;
const ATTACK: u64 = 15;

fn dataset(seed: u64) -> tangle_learning::data::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users: 24,
            samples_per_user: (24, 36),
            noise_std: 0.6,
            ..BlobsConfig::default()
        },
        seed,
    )
}

fn build() -> Sequential {
    mlp(8, &[16], 4, &mut seeded(1))
}

fn cfg(defended: bool, seed: u64) -> SimConfig {
    let nodes = 8;
    SimConfig {
        nodes_per_round: nodes,
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed,
        hyper: TangleHyperParams {
            num_tips: 2,
            sample_size: if defended { nodes } else { 2 },
            reference_avg: 5,
            confidence_samples: nodes,
            alpha: 0.5,
            confidence_mode: learning_tangle::ConfidenceMode::WalkHit,
            tip_validation: defended,
            window: None,
            accuracy_bias: 0.0,
            parallel_walks: true,
        },
        ..SimConfig::default()
    }
}

fn run_attacked(defended: bool, fraction: f64, kind: AttackKind, seed: u64) -> (f32, f32) {
    let mut sim = Simulation::new(dataset(5), cfg(defended, seed), build);
    assign_malicious(
        sim.nodes_mut(),
        fraction,
        PRETRAIN + 1,
        kind,
        seed,
        match kind {
            AttackKind::LabelFlip { src, dst } => Box::new(
                tangle_learning::learning::attack::default_flip_source(src, dst),
            )
                as Box<
                    dyn Fn(
                        &tangle_learning::learning::node::Node,
                    ) -> Option<tangle_learning::data::ClientData>,
                >,
            _ => Box::new(|_: &tangle_learning::learning::node::Node| None),
        },
    );
    for _ in 0..PRETRAIN {
        sim.round();
    }
    let pre_acc = sim.evaluate(0).accuracy;
    for _ in 0..ATTACK {
        sim.round();
    }
    let post_acc = sim.evaluate(1).accuracy;
    (pre_acc, post_acc)
}

/// With the §III-E defense active, 20% random-noise poisoners must not
/// destroy the consensus (Fig. 5, p ≤ 0.2 sustained).
#[test]
fn defended_tangle_survives_20pct_noise() {
    let (pre, post) = run_attacked(true, 0.2, AttackKind::RandomNoise, 101);
    assert!(pre > 0.7, "pre-training failed: {pre}");
    assert!(
        post > pre - 0.15,
        "defended tangle lost too much accuracy: {pre} -> {post}"
    );
}

/// Without the defense, a heavy noise attack visibly degrades the
/// consensus (the self-reinforcing takeover of §III-B).
#[test]
fn undefended_tangle_degrades_under_heavy_noise() {
    // Average over three seeds: individual undefended runs are noisy
    // (sometimes the poison happens to never win the walk).
    let mut degraded = 0;
    for seed in [102, 202, 302] {
        let (pre, post) = run_attacked(false, 0.4, AttackKind::RandomNoise, seed);
        if post < pre - 0.2 {
            degraded += 1;
        }
    }
    assert!(
        degraded >= 1,
        "40% undefended poisoning never degraded the model across 3 seeds"
    );
}

/// A defended tangle holds the targeted misclassification rate down at
/// p = 0.1 (Fig. 6: "In the case of p = 0.1, the label-flipping attack
/// fails").
#[test]
fn defended_tangle_resists_small_label_flip() {
    let kind = AttackKind::LabelFlip { src: 0, dst: 3 };
    let mut sim = Simulation::new(dataset(5), cfg(true, 103), build);
    assign_malicious(
        sim.nodes_mut(),
        0.1,
        PRETRAIN + 1,
        kind,
        103,
        tangle_learning::learning::attack::default_flip_source(0, 3),
    );
    for _ in 0..(PRETRAIN + ATTACK) {
        sim.round();
    }
    let mis = sim.target_misclassification(0, 3, 0);
    assert!(
        mis < 0.5,
        "p=0.1 flip attack should fail against the defense: {mis}"
    );
}

/// Backdoor attack (extension): with half the population stamping
/// triggers and no §III-E defense, the consensus model learns the
/// backdoor — triggered images flip to the target class while a benign
/// run stays clean.
#[test]
fn backdoor_attack_installs_and_is_measured() {
    use tangle_learning::data::femnist::{self, FemnistConfig};
    let fcfg = FemnistConfig {
        classes: 4,
        img: 8,
        users: 10,
        samples_per_user: (10, 16),
        noise_std: 0.05,
        strokes: 3,
        ..FemnistConfig::scaled()
    };
    let data = femnist::generate(&fcfg, 9);
    let build = move || {
        tangle_learning::nn::zoo::femnist_cnn(
            8,
            4,
            tangle_learning::nn::zoo::CnnConfig {
                conv1: 4,
                conv2: 8,
                dense: 16,
            },
            &mut seeded(2),
        )
    };
    let sim_cfg = SimConfig {
        nodes_per_round: 5,
        lr: 0.15,
        batch_size: 8,
        train_chunks: 1,
        train_parallel: true,
        eval_fraction: 0.5,
        seed: 21,
        hyper: TangleHyperParams {
            confidence_samples: 5,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };
    let target = 1u32;
    let patch = 3usize;

    // Benign run: the trigger should not systematically map to `target`.
    let mut clean = Simulation::new(data.clone(), sim_cfg.clone(), build);
    for _ in 0..12 {
        clean.round();
    }
    let clean_asr = clean.backdoor_success(target, patch, 0);
    assert!((0.0..=1.0).contains(&clean_asr));

    // Attacked run: 50% backdoor nodes from the start, no defense.
    let mut attacked = Simulation::new(data, sim_cfg, build);
    let chosen = assign_malicious(
        attacked.nodes_mut(),
        0.5,
        0,
        AttackKind::Backdoor { target, patch },
        3,
        |_| None,
    );
    for &i in &chosen {
        let d = attacked.nodes()[i]
            .poisoned_data
            .as_ref()
            .expect("backdoor data installed");
        assert_eq!(d.train_len(), 2 * attacked.nodes()[i].data.train_len());
    }
    for _ in 0..12 {
        attacked.round();
    }
    let attacked_asr = attacked.backdoor_success(target, patch, 0);
    assert!(
        attacked_asr > clean_asr + 0.2 || attacked_asr > 0.6,
        "backdoor should measurably raise the attack success rate: clean {clean_asr} vs attacked {attacked_asr}"
    );
}

/// The attack metrics themselves behave: a model trained *only* on flipped
/// data drives the 6b metric toward 1.
#[test]
fn flip_metric_detects_a_fully_poisoned_model() {
    let data = dataset(7);
    // Train a model exclusively on flipped data pooled from all clients.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in &data.clients {
        let stride: usize = c.train_x.shape()[1..].iter().product();
        for (i, &y) in c.train_y.iter().enumerate() {
            if y == 0 {
                xs.extend_from_slice(&c.train_x.as_slice()[i * stride..(i + 1) * stride]);
                ys.push(3u32); // flipped label
            }
        }
    }
    assert!(ys.len() > 10, "need class-0 samples");
    let x = tangle_learning::nn::Tensor::from_vec(vec![ys.len(), 8], xs);
    let mut model = build();
    let mut sgd = tangle_learning::nn::Sgd::new(0.3);
    for _ in 0..60 {
        let (_, g) = model.loss_and_grads(&x, &ys);
        sgd.step(&mut model, &g);
    }
    // Evaluate the 6b metric directly.
    let mut total = 0;
    let mut hit = 0;
    for c in &data.clients {
        let logits = model.predict(&c.test_x);
        let preds = tangle_learning::nn::loss::predictions(&logits);
        for (p, &t) in preds.iter().zip(&c.test_y) {
            if t == 0 {
                total += 1;
                if *p == 3 {
                    hit += 1;
                }
            }
        }
    }
    let mis = hit as f32 / total.max(1) as f32;
    assert!(
        mis > 0.8,
        "fully poisoned model should misclassify 0 as 3: {mis}"
    );
}
