//! # tangle-learning — decentralized federated learning on a tangle ledger
//!
//! A from-scratch Rust reproduction of *"Tangle Ledger for Decentralized
//! Learning"* (Schmid et al., 2020): federated learning without a central
//! aggregator, coordinated through an IOTA-style DAG ledger in which
//! publishing a model update doubles as validation of the updates it
//! approves.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`ledger`] | `tangle-ledger` | DAG ledger, tip-selection walks, confidence/rating analysis, PoW, DOT export |
//! | [`nn`] | `tinynn` | tensors, CNN/LSTM layers, manual backprop, SGD, parameter vectors |
//! | [`data`] | `feddata` | synthetic FEMNIST / Shakespeare / blob federated datasets |
//! | [`baseline`] | `fedavg` | the centralized federated-averaging baseline |
//! | [`learning`] | `learning-tangle` | the paper's node algorithms, attacks, and simulators |
//! | [`gossip`] | `tangle-gossip` | simulated P2P network: per-peer replicas, partitions, anti-entropy |
//! | [`telemetry`] | `lt-telemetry` | counters, histograms, span timers, structured JSONL event sinks |
//!
//! ## Quickstart
//!
//! ```
//! use tangle_learning::learning::{Simulation, SimConfig, TangleHyperParams};
//! use tangle_learning::data::blobs::{self, BlobsConfig};
//!
//! // A small federated population over an easy synthetic task.
//! let data = blobs::generate(&BlobsConfig::default(), 7);
//! let build = || tangle_learning::nn::zoo::mlp(8, &[16], 4, &mut tangle_learning::nn::rng::seeded(1));
//! let cfg = SimConfig {
//!     nodes_per_round: 5,
//!     hyper: TangleHyperParams { confidence_samples: 8, ..TangleHyperParams::basic() },
//!     ..SimConfig::default()
//! };
//! let mut sim = Simulation::new(data, cfg, build);
//! for _ in 0..5 {
//!     sim.round();
//! }
//! let result = sim.evaluate(0);
//! assert!(result.accuracy >= 0.0 && result.accuracy <= 1.0);
//! ```

/// The tangle (DAG ledger) substrate.
pub use tangle_ledger as ledger;

/// The neural-network substrate.
pub use tinynn as nn;

/// Synthetic federated datasets.
pub use feddata as data;

/// The centralized FedAvg baseline.
pub use fedavg as baseline;

/// The learning-tangle core (the paper's contribution).
pub use learning_tangle as learning;

/// The simulated P2P gossip network (per-peer replicas, partitions,
/// anti-entropy — the paper's §VI distributed-implementation outlook).
pub use tangle_gossip as gossip;

/// Observability: counters, histograms, span timers, and structured
/// JSONL event sinks threaded through the simulators.
pub use lt_telemetry as telemetry;
