//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small API-compatible subset of `rand` covering exactly what the
//! reproduction uses: an object-safe [`Rng`] core trait, the [`RngExt`]
//! extension trait providing `random`/`random_range`, [`SeedableRng`], and
//! [`rngs::SmallRng`] (xoshiro256++, seeded through SplitMix64 like the
//! real `SmallRng::seed_from_u64`).
//!
//! The streams are deterministic per seed, which is exactly what the
//! simulators rely on; they do not match upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Object-safe random-number source. Everything else is derived from
/// uniform `u64` output via [`RngExt`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` (the subset of the
/// `Standard`/`StandardUniform` distribution the workspace uses).
pub trait RandomValue {
    /// Draw one uniformly random value.
    fn random_from(rng: &mut (impl Rng + ?Sized)) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from(rng: &mut (impl Rng + ?Sized)) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random_from(rng: &mut (impl Rng + ?Sized)) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from(rng: &mut (impl Rng + ?Sized)) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random_from(rng: &mut (impl Rng + ?Sized)) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`]. The element type is a
/// trait parameter (not an associated type), and the impls below are
/// blanket impls over [`SampleUniform`] — both mirror real `rand` so
/// that unsuffixed literals like `-0.2..0.2` unify with the expected
/// output type during inference.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T;
}

/// Element types with a uniform range sampler.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut (impl Rng + ?Sized)) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty random_range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full 64-bit range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64_below(rng, span) as $t)
                } else {
                    assert!(lo < hi, "empty random_range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(uniform_u64_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut (impl Rng + ?Sized)) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty random_range");
                } else {
                    assert!(lo < hi, "empty random_range");
                }
                let unit = <$t as RandomValue>::random_from(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw in `[0, bound)` (Lemire-style rejection on the
/// high 64 bits of a 128-bit product).
fn uniform_u64_below(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound && lo < bound.wrapping_neg() {
            // fast path: cannot be biased
            return (m >> 64) as u64;
        }
        let threshold = bound.wrapping_neg() % bound;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`Rng`]
/// (including `dyn Rng`).
pub trait RngExt: Rng {
    /// A uniformly random value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// A small, fast generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.random_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let d = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn works_through_dyn_rng() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let v = dyn_rng.random_range(0..10usize);
        assert!(v < 10);
        let _: u64 = dyn_rng.random();
    }
}
