//! Offline stand-in for the `rayon` crate.
//!
//! Presents the `par_iter`/`into_par_iter`/`par_chunks_mut`/`join` API the
//! workspace uses, executed **sequentially**. Every call site already
//! derives per-item RNG seeds, so sequential execution produces the exact
//! same results a parallel pool would — it is simply not parallel. This
//! keeps the simulators bit-deterministic (a property the replay tests
//! assert) until a real work-stealing pool can be vendored.

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceExt,
        ParallelSliceMutExt,
    };
}

/// Sequential adapter standing in for rayon's parallel iterators.
pub struct ParallelIterator<I>(I);

impl<I: Iterator> ParallelIterator<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParallelIterator<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParallelIterator(self.0.map(f))
    }

    /// Pair each item with its index.
    pub fn enumerate(self) -> ParallelIterator<std::iter::Enumerate<I>> {
        ParallelIterator(self.0.enumerate())
    }

    /// Zip with another parallel iterator.
    pub fn zip<J>(self, other: ParallelIterator<J>) -> ParallelIterator<std::iter::Zip<I, J>>
    where
        J: Iterator,
    {
        ParallelIterator(self.0.zip(other.0))
    }

    /// Filter items.
    pub fn filter<F>(self, f: F) -> ParallelIterator<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParallelIterator(self.0.filter(f))
    }

    /// Consume every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }

    /// Rayon-style reduce: fold from a fresh identity.
    pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
    where
        I: Iterator<Item = T>,
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.0.fold(identity(), op)
    }

    /// Sum the items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Convert into a (sequential) parallel iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::IntoIter> {
        ParallelIterator(self.into_iter())
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

/// `par_iter` for shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate by reference.
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator(self.iter())
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter> {
        ParallelIterator(self.iter())
    }
}

/// `par_chunks` for shared slices.
pub trait ParallelSliceExt<T> {
    /// Chunked shared iteration.
    fn par_chunks(&self, size: usize) -> ParallelIterator<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParallelIterator<std::slice::Chunks<'_, T>> {
        ParallelIterator(self.chunks(size))
    }
}

/// `par_chunks_mut` for mutable slices.
pub trait ParallelSliceMutExt<T> {
    /// Chunked mutable iteration.
    fn par_chunks_mut(&mut self, size: usize) -> ParallelIterator<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParallelIterator<std::slice::ChunksMut<'_, T>> {
        ParallelIterator(self.chunks_mut(size))
    }
}

/// Run both closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = i as u32;
                cb[0] = 10 + i as u32;
            });
        assert_eq!(a, vec![0, 0, 1, 0, 2, 0]);
        assert_eq!(b, vec![10, 0, 11, 0, 12, 0]);
    }

    #[test]
    fn reduce_with_identity() {
        let total =
            (0usize..10)
                .into_par_iter()
                .map(|i| vec![i])
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
        assert_eq!(total, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
