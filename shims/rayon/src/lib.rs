//! Offline stand-in for the `rayon` crate, backed by a real thread pool.
//!
//! Presents the `par_iter`/`into_par_iter`/`par_chunks_mut`/`join` API the
//! workspace uses. Unlike the original sequential shim, the order-preserving
//! terminals (`for_each`, `collect`, and the map stage feeding `reduce`) now
//! execute items on a persistent pool of worker threads, so data-parallel
//! call sites actually scale with cores.
//!
//! Determinism is preserved by construction rather than by being sequential:
//!
//! - `for_each` runs each item's closure exactly once on some thread; call
//!   sites only write through disjoint `par_chunks_mut` borrows, so the
//!   result is independent of scheduling.
//! - `collect` writes each item's result into its own output slot, so the
//!   collected order always matches the input order.
//! - `reduce` maps items in parallel but folds the results **sequentially in
//!   input order** from a fresh identity — stronger than rayon's
//!   association-unspecified reduce, and required here because several call
//!   sites fold floating-point values.
//! - `sum`/`count`/`filter` and `join` remain sequential; no hot path relies
//!   on them for throughput.
//!
//! Nested parallel regions run sequentially on the worker that encounters
//! them (a thread-local guard), and concurrent top-level regions from other
//! threads fall back to sequential execution instead of queueing, so the
//! pool can never deadlock. Worker count defaults to
//! `available_parallelism() - 1` (the caller participates) and can be pinned
//! with `RAYON_NUM_THREADS`.

use std::cell::UnsafeCell;

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceExt,
        ParallelSliceMutExt,
    };
}

mod pool {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// One parallel dispatch: `task(i)` processes item `i` for `i < n`.
    ///
    /// The task pointer is lifetime-erased; soundness rests on the caller in
    /// [`run`] blocking until `done == n`, so the pointee outlives every call.
    struct Region {
        task: *const (dyn Fn(usize) + Sync),
        n: usize,
        next: AtomicUsize,
        done: Mutex<usize>,
        done_cv: Condvar,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    }

    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    struct Pool {
        /// At most one active region; publishers that find it occupied run
        /// their items sequentially instead of queueing.
        slot: Mutex<Option<Arc<Region>>>,
        work_cv: Condvar,
        workers: usize,
    }

    thread_local! {
        static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    fn thread_count() -> usize {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    fn global() -> &'static Pool {
        static POOL: OnceLock<&'static Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let pool: &'static Pool = Box::leak(Box::new(Pool {
                slot: Mutex::new(None),
                work_cv: Condvar::new(),
                workers: thread_count().saturating_sub(1),
            }));
            for w in 0..pool.workers {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{w}"))
                    .spawn(move || worker_loop(pool))
                    .expect("failed to spawn shim pool worker");
            }
            pool
        })
    }

    fn worker_loop(pool: &'static Pool) {
        IN_WORKER.with(|f| f.set(true));
        loop {
            let region = {
                let mut slot = pool.slot.lock().unwrap();
                loop {
                    if let Some(r) = slot.as_ref() {
                        if r.next.load(Ordering::Relaxed) < r.n {
                            break r.clone();
                        }
                    }
                    slot = pool.work_cv.wait(slot).unwrap();
                }
            };
            drain(&region);
        }
    }

    /// Claim and run items until the region is exhausted. Completion is
    /// counted even when an item panics, so the publishing caller can never
    /// deadlock; the first payload is re-thrown on the caller thread.
    fn drain(region: &Region) {
        loop {
            let i = region.next.fetch_add(1, Ordering::Relaxed);
            if i >= region.n {
                return;
            }
            let task = unsafe { &*region.task };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
                let mut slot = region.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut done = region.done.lock().unwrap();
            *done += 1;
            if *done == region.n {
                region.done_cv.notify_all();
            }
        }
    }

    /// Run `task(0..n)` across the pool, blocking until every item is done.
    /// Falls back to in-place sequential execution when the pool is
    /// unavailable (single core), already busy, or we are on a worker.
    pub fn run(n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if n == 1 || IN_WORKER.with(|f| f.get()) {
            for i in 0..n {
                task(i);
            }
            return;
        }
        let pool = global();
        if pool.workers == 0 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // Erase the borrow's lifetime; the wait on `done == n` below keeps
        // `task` alive for every call a worker can make through the pointer.
        let task_static: &(dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        };
        let region = Arc::new(Region {
            task: task_static as *const (dyn Fn(usize) + Sync),
            n,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut slot = pool.slot.lock().unwrap();
            if slot.is_some() {
                drop(slot);
                for i in 0..n {
                    task(i);
                }
                return;
            }
            *slot = Some(region.clone());
            pool.work_cv.notify_all();
        }
        drain(&region);
        let mut done = region.done.lock().unwrap();
        while *done < region.n {
            done = region.done_cv.wait(done).unwrap();
        }
        drop(done);
        *pool.slot.lock().unwrap() = None;
        let payload = region.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Per-index once-only storage shared across the pool. Sound because every
/// index is claimed by exactly one worker (the atomic counter in the pool),
/// so each slot sees a single writer and no concurrent reader.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn filled(items: Vec<T>) -> Self {
        Slots(
            items
                .into_iter()
                .map(|x| UnsafeCell::new(Some(x)))
                .collect(),
        )
    }

    fn empty(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Move the value out of slot `i`. Each index may be taken at most once
    /// per parallel region.
    fn take(&self, i: usize) -> Option<T> {
        unsafe { (*self.0[i].get()).take() }
    }

    /// Store into slot `i`. Each index may be written at most once per
    /// parallel region.
    fn put(&self, i: usize, value: T) {
        unsafe { *self.0[i].get() = Some(value) }
    }

    fn into_vec(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("parallel region left an empty slot"))
            .collect()
    }
}

/// Apply `f` to every item on the pool. Item order of side effects is
/// unspecified; call sites must only touch disjoint state per item.
fn par_apply<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = items.len();
    let slots = Slots::filled(items);
    pool::run(n, &|i| {
        if let Some(item) = slots.take(i) {
            f(item);
        }
    });
}

/// Map every item on the pool, preserving input order in the output.
fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let input = Slots::filled(items);
    let output = Slots::empty(n);
    pool::run(n, &|i| {
        if let Some(item) = input.take(i) {
            output.put(i, f(item));
        }
    });
    output.into_vec()
}

fn identity<T>(x: T) -> T {
    x
}

// Dedicated identities for the slice entry points: a plain `identity::<&mut
// [T]>` fn item pins one lifetime, but the trait signatures below need the
// higher-ranked `for<'a> fn(&'a mut [T]) -> &'a mut [T]` pointer type.
fn identity_slice<T>(x: &[T]) -> &[T] {
    x
}

fn identity_slice_mut<T>(x: &mut [T]) -> &mut [T] {
    x
}

fn identity_ref<T>(x: &T) -> &T {
    x
}

/// Parallel pipeline: a lazily composed per-item op over a base iterator.
/// Terminals materialize the base items and dispatch the op on the pool.
pub struct ParallelIterator<I, F> {
    base: I,
    op: F,
}

impl<I: Iterator, F> ParallelIterator<I, F> {
    /// Map each item.
    pub fn map<R, G, R2>(self, g: G) -> ParallelIterator<I, impl Fn(I::Item) -> R2>
    where
        F: Fn(I::Item) -> R,
        G: Fn(R) -> R2,
    {
        let op = self.op;
        ParallelIterator {
            base: self.base,
            op: move |x| g(op(x)),
        }
    }

    /// Pair each item with its index.
    #[allow(clippy::type_complexity)]
    pub fn enumerate<R>(
        self,
    ) -> ParallelIterator<std::iter::Enumerate<I>, impl Fn((usize, I::Item)) -> (usize, R)>
    where
        F: Fn(I::Item) -> R,
    {
        let op = self.op;
        ParallelIterator {
            base: self.base.enumerate(),
            op: move |(i, x)| (i, op(x)),
        }
    }

    /// Zip with another parallel iterator.
    #[allow(clippy::type_complexity)]
    pub fn zip<J, G, R, R2>(
        self,
        other: ParallelIterator<J, G>,
    ) -> ParallelIterator<std::iter::Zip<I, J>, impl Fn((I::Item, J::Item)) -> (R, R2)>
    where
        J: Iterator,
        F: Fn(I::Item) -> R,
        G: Fn(J::Item) -> R2,
    {
        let op = self.op;
        let other_op = other.op;
        ParallelIterator {
            base: self.base.zip(other.base),
            op: move |(x, y)| (op(x), other_op(y)),
        }
    }

    /// Filter items (evaluated sequentially; filtering is not on a hot path).
    #[allow(clippy::type_complexity)]
    pub fn filter<R, P>(self, mut p: P) -> ParallelIterator<std::vec::IntoIter<R>, fn(R) -> R>
    where
        F: Fn(I::Item) -> R,
        P: FnMut(&R) -> bool,
    {
        let op = self.op;
        let mut kept = Vec::new();
        for x in self.base {
            let r = op(x);
            if p(&r) {
                kept.push(r);
            }
        }
        ParallelIterator {
            base: kept.into_iter(),
            op: identity as fn(R) -> R,
        }
    }

    /// Consume every item, running items on the pool. Side-effect order is
    /// unspecified, as with real rayon.
    pub fn for_each<R, G>(self, g: G)
    where
        I::Item: Send,
        F: Fn(I::Item) -> R + Sync,
        G: Fn(R) + Sync,
    {
        let op = self.op;
        let items: Vec<I::Item> = self.base.collect();
        par_apply(items, |x| g(op(x)));
    }

    /// Collect into any `FromIterator` container, preserving input order.
    pub fn collect<R, C>(self) -> C
    where
        I::Item: Send,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
        C: FromIterator<R>,
    {
        let items: Vec<I::Item> = self.base.collect();
        par_map(items, self.op).into_iter().collect()
    }

    /// Rayon-style reduce: items are mapped on the pool, then folded
    /// **sequentially in input order** from a fresh identity, so the result
    /// is deterministic even for non-associative (floating-point) ops.
    pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
    where
        I::Item: Send,
        T: Send,
        F: Fn(I::Item) -> T + Sync,
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        let items: Vec<I::Item> = self.base.collect();
        par_map(items, self.op).into_iter().fold(identity(), op)
    }

    /// Sum the items (sequential, in input order).
    pub fn sum<R, S>(self) -> S
    where
        F: Fn(I::Item) -> R,
        S: std::iter::Sum<R>,
    {
        let op = self.op;
        self.base.map(op).sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.base.count()
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Convert into a parallel pipeline.
    #[allow(clippy::type_complexity)]
    fn into_par_iter(self) -> ParallelIterator<Self::IntoIter, fn(Self::Item) -> Self::Item> {
        ParallelIterator {
            base: self.into_iter(),
            op: identity,
        }
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

/// `par_iter` for shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate by reference.
    #[allow(clippy::type_complexity)]
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter, fn(Self::Item) -> Self::Item>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter, fn(&'a T) -> &'a T> {
        ParallelIterator {
            base: self.iter(),
            op: identity_ref,
        }
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParallelIterator<Self::Iter, fn(&'a T) -> &'a T> {
        ParallelIterator {
            base: self.iter(),
            op: identity_ref,
        }
    }
}

/// `par_chunks` for shared slices.
pub trait ParallelSliceExt<T> {
    /// Chunked shared iteration.
    #[allow(clippy::type_complexity)]
    fn par_chunks(
        &self,
        size: usize,
    ) -> ParallelIterator<std::slice::Chunks<'_, T>, fn(&[T]) -> &[T]>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_chunks(
        &self,
        size: usize,
    ) -> ParallelIterator<std::slice::Chunks<'_, T>, fn(&[T]) -> &[T]> {
        ParallelIterator {
            base: self.chunks(size),
            op: identity_slice,
        }
    }
}

/// `par_chunks_mut` for mutable slices.
pub trait ParallelSliceMutExt<T> {
    /// Chunked mutable iteration.
    #[allow(clippy::type_complexity)]
    fn par_chunks_mut(
        &mut self,
        size: usize,
    ) -> ParallelIterator<std::slice::ChunksMut<'_, T>, fn(&mut [T]) -> &mut [T]>;
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_chunks_mut(
        &mut self,
        size: usize,
    ) -> ParallelIterator<std::slice::ChunksMut<'_, T>, fn(&mut [T]) -> &mut [T]> {
        ParallelIterator {
            base: self.chunks_mut(size),
            op: identity_slice_mut,
        }
    }
}

/// Run both closures (sequentially) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = i as u32;
                cb[0] = 10 + i as u32;
            });
        assert_eq!(a, vec![0, 0, 1, 0, 2, 0]);
        assert_eq!(b, vec![10, 0, 11, 0, 12, 0]);
    }

    #[test]
    fn reduce_with_identity() {
        let total =
            (0usize..10)
                .into_par_iter()
                .map(|i| vec![i])
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
        assert_eq!(total, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn collect_preserves_input_order_at_scale() {
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out.len(), 10_000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 3);
        }
    }

    #[test]
    fn for_each_runs_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1_000).map(|_| AtomicUsize::new(0)).collect();
        (0..1_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_regions_complete() {
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..8usize).into_par_iter().map(|j| i * 8 + j).collect();
                inner.iter().sum()
            })
            .collect();
        for (i, &v) in out.iter().enumerate() {
            let expect: usize = (0..8).map(|j| i * 8 + j).sum();
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn filter_then_collect() {
        let odds: Vec<u32> = (0..10u32).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odds, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn reduce_is_input_order_deterministic() {
        // A deliberately non-associative op: fold order must be input order.
        let folded = (1..=6u64)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 0.0f64, |a, b| a * 2.0 + b);
        let expect = (1..=6).fold(0.0f64, |a, b| a * 2.0 + b as f64);
        assert_eq!(folded.to_bits(), expect.to_bits());
    }

    #[test]
    #[should_panic(expected = "boom from worker item")]
    fn panics_propagate_to_caller() {
        (0..64usize).into_par_iter().for_each(|i| {
            if i == 13 {
                panic!("boom from worker item");
            }
        });
    }
}
