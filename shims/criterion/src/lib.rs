//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!`/`Criterion` API the
//! bench targets use, with a simple measurement loop: each benchmark is
//! warmed up briefly, then timed over `sample_size` samples, and the
//! mean/min per-iteration wall time is printed. No statistics, plots, or
//! baselines — enough to compare hot paths before/after a change.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Per-benchmark `(label, median_ns)` results collected this process, in
/// execution order. Feeds the optional `--json <path>` snapshot.
fn results() -> &'static Mutex<Vec<(String, u128)>> {
    static REG: OnceLock<Mutex<Vec<(String, u128)>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// The path given via `--json <path>` (or `--json=<path>`), if any.
fn json_path_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Write the collected medians as JSON when `--json <path>` was passed
/// (no-op otherwise). Called by [`criterion_main!`] after all groups ran.
/// Schema (`lt-bench/1`): `benches` maps each `group/bench` label to its
/// median per-iteration nanoseconds; `groups` maps each group to the
/// median over its benches' medians.
pub fn write_json_summary() {
    let Some(path) = json_path_from_args() else {
        return;
    };
    let reg = results().lock().unwrap();
    let mut benches: Vec<(String, u128)> = reg.clone();
    benches.sort();
    let mut by_group: std::collections::BTreeMap<String, Vec<u128>> =
        std::collections::BTreeMap::new();
    for (label, ns) in &benches {
        let group = label.split('/').next().unwrap_or(label).to_string();
        by_group.entry(group).or_default().push(*ns);
    }
    let mut out = String::from("{\n  \"schema\": \"lt-bench/1\",\n  \"benches\": {\n");
    for (i, (label, ns)) in benches.iter().enumerate() {
        let sep = if i + 1 == benches.len() { "" } else { "," };
        out.push_str(&format!("    \"{label}\": {ns}{sep}\n"));
    }
    out.push_str("  },\n  \"groups\": {\n");
    let n_groups = by_group.len();
    for (i, (group, mut medians)) in by_group.into_iter().enumerate() {
        medians.sort_unstable();
        let median = medians[medians.len() / 2];
        let sep = if i + 1 == n_groups { "" } else { "," };
        out.push_str(&format!("    \"{group}\": {median}{sep}\n"));
    }
    out.push_str("  }\n}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote bench snapshot to {path}");
}

/// How per-iteration inputs are batched (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Drives one benchmark's measurement.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample mean iteration times.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and iteration-count calibration: aim for ~5ms per sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(25));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.times.push(start.elapsed() / iters);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(25));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.times.push(start.elapsed() / iters);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    let min = b.times.iter().min().copied().unwrap_or_default();
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let mut sorted = b.times.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    results()
        .lock()
        .unwrap()
        .push((label.to_string(), median.as_nanos()));
    println!(
        "{label:<50} mean {:>12}   min {:>12}   ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        b.times.len()
    );
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        if self.criterion.should_run(&label) {
            run_one(&label, self.sample_size, &mut f);
        }
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes a substring filter; other
        // harness flags (--bench, --save-baseline, ...) are ignored, and
        // the value of `--json <path>` must not be mistaken for a filter.
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--json" {
                let _ = args.next();
                continue;
            }
            if a.starts_with('-') {
                continue;
            }
            filter = Some(a);
            break;
        }
        Criterion {
            default_sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    fn should_run(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }

    /// Begin a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        if self.should_run(&label) {
            run_one(&label, self.default_sample_size, &mut f);
        }
        self
    }
}

/// Re-export matching criterion's convenience.
pub use std::hint::black_box;

/// Define a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion {
            default_sample_size: 3,
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            default_sample_size: 2,
            filter: Some("match_me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran);
    }
}
