//! Offline stand-in for `serde`.
//!
//! Instead of the real serde's visitor architecture, this shim uses a
//! simple self-describing value model: [`Serialize`] lowers a type to a
//! [`Value`] tree and [`Deserialize`] rebuilds it. The companion
//! `serde_json` shim renders and parses `Value` as JSON, and the
//! `serde_derive` shim generates the field-by-field impls. The subset
//! matches what this workspace derives: plain structs (named and tuple),
//! fieldless enums, externally-tagged data-carrying enums, `Option`,
//! sequences, maps, strings, and the numeric primitives — with `u64`
//! values preserved exactly (transaction issuers use `u64::MAX`).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model plus an exact
/// split between signed/unsigned integers and f32/f64).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (only produced for negative values).
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A single-precision float (printed with f32 shortest form).
    F32(f32),
    /// A double-precision float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F32(_) | Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X while deserializing Y, got Z".
    pub fn expected(what: &str, context: &str, got: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {context}, got {}",
            got.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a map, treating a missing field as `null`
/// (so `Option` fields tolerate omission).
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError(format!("in field `{context}.{name}`: {}", e.0)))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError(format!("missing field `{name}` in {context}"))),
    }
}

// ---- primitive impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool", v)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 {
                    Value::U64(wide as u64)
                } else {
                    Value::I64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t))))?,
                    _ => return Err(DeError::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F32(f) => Ok(*f),
            Value::F64(f) => Ok(*f as f32),
            Value::U64(u) => Ok(*u as f32),
            Value::I64(i) => Ok(*i as f32),
            _ => Err(DeError::expected("number", "f32", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::F32(f) => Ok(*f as f64),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            _ => Err(DeError::expected("number", "f64", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("sequence", "BTreeSet", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("map", "BTreeMap", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_max_survives() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<f32>.to_value(), Value::Null);
        assert_eq!(Some(1.5f32).to_value(), Value::F32(1.5));
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let fields: Vec<(String, Value)> = vec![("a".into(), Value::U64(1))];
        let got: Option<u32> = field(&fields, "absent", "T").unwrap();
        assert_eq!(got, None);
        let err = field::<u32>(&fields, "absent", "T").unwrap_err();
        assert!(err.0.contains("missing field"));
    }

    #[test]
    fn signed_unsigned_crossover() {
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
