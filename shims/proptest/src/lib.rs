//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! `any::<T>()` strategies, tuple strategies, `prop::collection::vec`,
//! `prop_map`/`prop_flat_map`, and the `prop_assert*`/`prop_assume!`
//! macros. Cases are sampled deterministically from a seed derived from
//! the test name, so failures reproduce across runs. There is no
//! shrinking: a failing case reports its inputs via the assertion
//! message instead.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is not counted.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Build a rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A reusable generator of values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<F, T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        MapStrategy { inner: self, f }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, T> Strategy for MapStrategy<S, F>
where
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, S2: Strategy> Strategy for FlatMapStrategy<S, F>
where
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().random()
            }
        }
    )*};
}
impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection size specification: exact, `lo..hi`, or `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng
                .rng()
                .random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for `Option<T>`: `None` with probability 1/4, otherwise
    /// `Some` of a value drawn from `inner` (real proptest defaults to
    /// 3/4 `Some` as well).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng().random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec(...)`).
    pub use super::{collection, option};
}

pub mod prelude {
    //! Everything a property-test file needs.
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Run one proptest-style test function body over many sampled cases.
///
/// Used by the [`proptest!`] macro; public so the macro expansion can
/// reach it from other crates.
pub fn run_cases<F>(test_name: &str, config: ProptestConfig, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(100);
    while accepted < config.cases {
        if attempts >= max_attempts {
            panic!(
                "{test_name}: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(test_name, attempts);
        attempts += 1;
        match case_fn(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {} failed: {msg}", attempts - 1);
            }
        }
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(arg in
/// strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each test fn in a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), $cfg, |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Assert inside a proptest body (fails the case, reporting the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Filter out a case without failing (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = crate::collection::vec(0u32..100, 3..10);
        let mut r1 = TestRng::for_case("x", 4);
        let mut r2 = TestRng::for_case("x", 4);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1usize..4, 1usize..4),
            x in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assume!(pair.0 + pair.1 > 2);
            prop_assert!(x % 2 == 0);
            prop_assert_ne!(pair.0, 0);
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0f32..1.0, n)).prop_map(|v| v.len())) {
            prop_assert!((1..6).contains(&v));
        }
    }
}
