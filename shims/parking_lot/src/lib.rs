//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` wrappers over the
//! std primitives with parking_lot's poison-free API (lock methods return
//! guards directly). A poisoned std lock means a panic already unwound a
//! critical section; propagating the panic here matches parking_lot's
//! behaviour closely enough for this workspace.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    }
}

/// Mutual exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
