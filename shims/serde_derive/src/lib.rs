//! Derive macros for the offline `serde` shim.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the derive
//! input token stream by hand. It supports exactly the shapes this
//! workspace derives on: structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, struct-like, or tuple —
//! including simple type generics (`struct Tangle<P>`), which receive
//! `P: serde::Serialize` / `P: serde::Deserialize` bounds. Field
//! attributes (`#[serde(...)]`) are not supported and nothing in the
//! workspace uses them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    generics: Vec<String>,
    body: Body,
}

/// Cursor over a token list.
struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    /// Skip any `#[...]` attributes.
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            // the bracketed attribute body
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.next();
            }
        }
    }

    /// Skip a `pub` / `pub(crate)` visibility marker.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, context: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier ({context}), got {other:?}"),
        }
    }
}

fn punct_char(t: &TokenTree) -> Option<char> {
    match t {
        TokenTree::Punct(p) => Some(p.as_char()),
        _ => None,
    }
}

/// Parse the type-parameter names out of a generic parameter list,
/// starting just after the opening `<`. Lifetimes and bounds are skipped;
/// only type-parameter idents are recorded.
fn parse_generics(c: &mut Cursor) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        let Some(t) = c.next() else {
            panic!("serde_derive: unterminated generic parameter list");
        };
        match punct_char(&t) {
            Some('<') => {
                depth += 1;
                at_param_start = false;
            }
            Some('>') => {
                depth -= 1;
            }
            Some(',') if depth == 1 => {
                at_param_start = true;
            }
            Some('\'') => {
                // lifetime marker; consume its ident without recording
                c.next();
                at_param_start = false;
            }
            _ => {
                if at_param_start && depth == 1 {
                    if let TokenTree::Ident(id) = &t {
                        let s = id.to_string();
                        if s != "const" {
                            params.push(s);
                        }
                    }
                    at_param_start = false;
                }
            }
        }
    }
    params
}

/// Parse named fields from the token stream inside `{ ... }`.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_vis();
        fields.push(c.expect_ident("field name"));
        match c.next() {
            Some(t) if punct_char(&t) == Some(':') => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // skip the type, tracking angle depth so generic commas don't split
        let mut depth = 0i32;
        loop {
            match c.peek() {
                None => break,
                Some(t) => match punct_char(t) {
                    Some('<') => {
                        depth += 1;
                        c.next();
                    }
                    Some('>') => {
                        depth -= 1;
                        c.next();
                    }
                    Some(',') if depth == 0 => {
                        c.next();
                        break;
                    }
                    _ => {
                        c.next();
                    }
                },
            }
        }
    }
    fields
}

/// Count tuple fields in the token stream inside `( ... )`.
fn parse_tuple_arity(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut arity = 0usize;
    let mut depth = 0i32;
    let mut segment_nonempty = false;
    while let Some(t) = c.next() {
        match punct_char(&t) {
            Some('<') => {
                depth += 1;
                segment_nonempty = true;
            }
            Some('>') => depth -= 1,
            Some(',') if depth == 0 => {
                if segment_nonempty {
                    arity += 1;
                }
                segment_nonempty = false;
            }
            _ => segment_nonempty = true,
        }
    }
    if segment_nonempty {
        arity += 1;
    }
    arity
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                c.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(c.peek().and_then(punct_char), Some(',')) {
            c.next();
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident("struct/enum keyword");
    let name = c.expect_ident("type name");
    let generics = if matches!(c.peek().and_then(punct_char), Some('<')) {
        c.next();
        parse_generics(&mut c)
    } else {
        Vec::new()
    };
    let body = match (keyword.as_str(), c.peek()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(parse_tuple_arity(g.stream()))
        }
        ("struct", _) => Body::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g.stream()))
        }
        (kw, t) => panic!("serde_derive: unsupported item `{kw}` with body {t:?}"),
    };
    Input {
        name,
        generics,
        body,
    }
}

fn impl_header(input: &Input, trait_name: &str) -> String {
    let name = &input.name;
    if input.generics.is_empty() {
        format!("impl serde::{trait_name} for {name}")
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: serde::{trait_name}"))
            .collect();
        let plain = input.generics.join(", ");
        format!(
            "impl<{}> serde::{trait_name} for {name}<{plain}>",
            bounded.join(", ")
        )
    }
}

fn named_fields_to_value(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!("(String::from(\"{f}\"), serde::Serialize::to_value(&{access_prefix}{f}))")
        })
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_map(fields: &[String], context: &str) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: serde::field(m, \"{f}\", \"{context}\")?,"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Generate the `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let header = impl_header(&input, "Serialize");
    let body = match &input.body {
        Body::NamedStruct(fields) => named_fields_to_value(fields, "self."),
        Body::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "Self::{vname} => serde::Value::Str(String::from(\"{vname}\")),"
                        ),
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let inner = named_fields_to_value(fields, "");
                            format!(
                                "Self::{vname} {{ {binds} }} => serde::Value::Map(vec![(String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "Self::{vname}(f0) => serde::Value::Map(vec![(String::from(\"{vname}\"), serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => serde::Value::Map(vec![(String::from(\"{vname}\"), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         {header} {{ fn to_value(&self) -> serde::Value {{ {body} }} }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Generate the `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let header = impl_header(&input, "Deserialize");
    let name = &input.name;
    let body = match &input.body {
        Body::NamedStruct(fields) => {
            let build = named_fields_from_map(fields, name);
            format!(
                "let m = v.as_map().ok_or_else(|| serde::DeError::expected(\"map\", \"{name}\", v))?; \
                 Ok(Self {{ {build} }})"
            )
        }
        Body::TupleStruct(1) => "Ok(Self(serde::Deserialize::from_value(v)?))".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{ serde::Value::Seq(items) if items.len() == {n} => Ok(Self({})), \
                 _ => Err(serde::DeError::expected(\"{n}-element sequence\", \"{name}\", v)) }}",
                items.join(", ")
            )
        }
        Body::UnitStruct => "Ok(Self)".to_string(),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let context = format!("{name}::{vname}");
                            let build = named_fields_from_map(fields, &context);
                            Some(format!(
                                "\"{vname}\" => {{ let m = inner.as_map().ok_or_else(|| serde::DeError::expected(\"map\", \"{context}\", inner))?; Ok(Self::{vname} {{ {build} }}) }}"
                            ))
                        }
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok(Self::{vname}(serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match inner {{ serde::Value::Seq(items) if items.len() == {n} => Ok(Self::{vname}({})), _ => Err(serde::DeError::expected(\"{n}-element sequence\", \"{name}::{vname}\", inner)) }},",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   serde::Value::Str(s) => match s.as_str() {{ \
                     {} \
                     other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))), \
                   }}, \
                   serde::Value::Map(entries) if entries.len() == 1 => {{ \
                     let (tag, inner) = &entries[0]; \
                     match tag.as_str() {{ \
                       {} \
                       other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))), \
                     }} \
                   }}, \
                   _ => Err(serde::DeError::expected(\"variant\", \"{name}\", v)), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    let out = format!(
        "#[automatically_derived] #[allow(unused_variables, clippy::all)] \
         {header} {{ fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }} }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
