//! Offline stand-in for the `bytes` crate: `Bytes`/`BytesMut` over
//! `Vec<u8>` plus the `Buf`/`BufMut` trait subset the wire codecs use
//! (little-endian integer/float accessors, slices, and cursor-style
//! consumption on `&[u8]`).

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor trait.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread byte slice.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes into `dest`, consuming them.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "buffer underflow");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Write-side trait.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable, cheaply clonable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable shared byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::new(src.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        w.put_slice(b"abc");
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.len(), 3);
    }
}
