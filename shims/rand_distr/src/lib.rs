//! Offline stand-in for the `rand_distr` crate: the `Distribution` trait
//! plus the three distributions the workspace samples from — `Normal`
//! (Box–Muller), `Uniform`, and `Gamma` (Marsaglia–Tsang).

use rand::{Rng, RngExt};

/// Error type for invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Float scalar abstraction so `Normal`/`Uniform` work for f32 and f64.
pub trait Float: Copy + PartialOrd {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn is_finite_v(self) -> bool;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite_v(self) -> bool {
        self.is_finite()
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite_v(self) -> bool {
        self.is_finite()
    }
}

/// Normal (Gaussian) distribution, sampled via Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        if !mean.is_finite_v() || !std_dev.is_finite_v() || std_dev.to_f64() < 0.0 {
            return Err(Error("invalid normal parameters"));
        }
        Ok(Self { mean, std_dev })
    }
}

fn standard_normal(rng: &mut (impl Rng + ?Sized)) -> f64 {
    // Box–Muller; u1 kept away from zero so the log stays finite.
    let u1: f64 = loop {
        let u = rng.random::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        let z = standard_normal(rng);
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Uniform distribution over a closed interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
}

impl<F: Float> Uniform<F> {
    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: F, high: F) -> Result<Self, Error> {
        // NaN bounds compare as incomparable and are rejected too.
        let ordered = matches!(
            low.to_f64().partial_cmp(&high.to_f64()),
            Some(core::cmp::Ordering::Less | core::cmp::Ordering::Equal)
        );
        if !ordered {
            return Err(Error("uniform low > high"));
        }
        Ok(Self { low, high })
    }

    /// Uniform over `[low, high)` (identical sampling here).
    pub fn new(low: F, high: F) -> Result<Self, Error> {
        let ordered = matches!(
            low.to_f64().partial_cmp(&high.to_f64()),
            Some(core::cmp::Ordering::Less)
        );
        if !ordered {
            return Err(Error("uniform low >= high"));
        }
        Ok(Self { low, high })
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        let u: f64 = rng.random();
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        F::from_f64(lo + u * (hi - lo))
    }
}

/// Gamma distribution with shape `k` and scale `θ`, via Marsaglia–Tsang
/// squeeze (with the standard `U^{1/k}` boost for `k < 1`).
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// A gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        // Positivity check that also rejects NaN parameters.
        let positive = |v: f64| matches!(v.partial_cmp(&0.0), Some(core::cmp::Ordering::Greater));
        if !positive(shape) || !positive(scale) {
            return Err(Error("invalid gamma parameters"));
        }
        Ok(Self { shape, scale })
    }
}

fn gamma_sample(rng: &mut (impl Rng + ?Sized), shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}
        let u: f64 = loop {
            let u = rng.random::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return gamma_sample(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        let x2 = x * x;
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gamma_sample(rng, self.shape) * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = SmallRng::seed_from_u64(1);
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5).unwrap();
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut rng = SmallRng::seed_from_u64(3);
        for &(shape, scale) in &[(0.5f64, 1.0f64), (2.0, 1.5), (9.0, 0.5)] {
            let dist = Gamma::new(shape, scale).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            let expect = shape * scale;
            assert!(
                (mean - expect).abs() < 0.15 * expect.max(0.5),
                "shape {shape} scale {scale}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Uniform::new(1.0f32, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
    }
}
