//! Offline stand-in for `crossbeam`: the `channel` module backed by
//! `std::sync::mpsc`. The workspace only uses multi-producer /
//! single-consumer unbounded channels, which std covers exactly.

pub mod channel {
    //! Unbounded MPSC channels with crossbeam's naming.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_then_drain() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got: Vec<u32> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
