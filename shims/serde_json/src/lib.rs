//! Offline stand-in for `serde_json`: renders and parses the serde shim's
//! [`Value`] model as JSON. Covers `to_string`, `to_string_pretty`,
//! `to_writer`, and `from_str`. Numbers keep their exact width: `u64`
//! values (e.g. `u64::MAX` issuer ids) never pass through `f64`, and
//! `f32` values print in their f32 shortest form.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json.
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ---------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F32(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error(format!("io error: {e}")))
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // consume the full UTF-8 sequence starting at b
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let slice = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(to_string(&-42i64).unwrap(), "-42");
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(to_string(&0.1f32).unwrap(), "0.1");
        assert_eq!(from_str::<f32>("0.1").unwrap(), 0.1f32);
        assert_eq!(to_string(&f32::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tüñíçødé";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00fc\\ud83d\\ude00\"").unwrap(),
            "ü😀"
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let none: Option<f32> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn pretty_prints_with_indent() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        let back: Value = from_str(&pretty).unwrap();
        // u64 stays integral through the roundtrip
        assert_eq!(back.as_map().unwrap()[0].1, Value::U64(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
