//! Asynchronous (round-free) decentralized learning.
//!
//! The round structure of the paper's evaluation exists only for
//! comparability with FedAvg — a real tangle network is asynchronous. Here
//! worker threads snapshot the shared ledger, train against their (stale)
//! view, and publish concurrently, like independent peers.
//!
//! ```text
//! cargo run --release --example async_network
//! ```

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::async_sim::run_async;
use tangle_learning::learning::node::Node;
use tangle_learning::learning::{SimConfig, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;

fn main() {
    let data = blobs::generate(
        &BlobsConfig {
            users: 16,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        8,
    );
    println!("dataset: {}", data.summary());
    let nodes: Vec<Node> = data
        .clients
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, c)| Node::honest(i, c))
        .collect();
    let build = || mlp(8, &[16], 4, &mut seeded(1));
    let cfg = SimConfig {
        lr: 0.15,
        seed: 77,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };

    let workers = 4;
    let target = 60;
    println!(
        "running {workers} concurrent workers until the ledger holds {target} transactions..."
    );
    let run = run_async(&nodes, &cfg, build, workers, target);

    println!(
        "\nledger: {} transactions, {} tips, {} gate-rejected attempts",
        run.tangle.len(),
        run.tangle.tip_count(),
        run.discarded
    );
    let max_stale = run
        .events
        .iter()
        .map(|e| e.tangle_len - e.snapshot_len - 1)
        .max()
        .unwrap_or(0);
    let mean_stale: f64 = run
        .events
        .iter()
        .map(|e| (e.tangle_len - e.snapshot_len - 1) as f64)
        .sum::<f64>()
        / run.events.len().max(1) as f64;
    println!(
        "staleness (transactions published between a node's snapshot and its own publish): \
         mean {mean_stale:.2}, max {max_stale}"
    );
    let by_worker: Vec<usize> = (0..workers)
        .map(|w| run.events.iter().filter(|e| e.worker == w).count())
        .collect();
    println!("publications per worker: {by_worker:?}");
}
