//! Decentralized learning on a genuine P2P gossip network, through a
//! partition and its heal (paper §VI: a "distributed implementation ...
//! considering faults introduced by real-world network conditions").
//!
//! Every peer keeps its *own* tangle replica, receives transactions over
//! lossy, latent links (buffering orphans that arrive before their
//! parents), and trains against its possibly-stale view. Mid-run the
//! network splits into two halves which keep learning independently; after
//! the heal, the pull-based repair protocol merges the sub-tangles.
//!
//! ```text
//! cargo run --release --example p2p_partition
//! ```

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::gossip::learn::GossipLearning;
use tangle_learning::gossip::{Latency, NetworkConfig, Topology};
use tangle_learning::learning::{SimConfig, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;

fn main() {
    let users = 12;
    let data = blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        3,
    );
    println!("dataset: {}", data.summary());
    let cfg = SimConfig {
        lr: 0.15,
        batch_size: 8,
        seed: 11,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };
    let net = NetworkConfig {
        topology: Topology::RandomRegular { degree: 3 },
        latency: Latency { min: 1, max: 5 },
        loss: 0.05,
        pow_difficulty: 0,
        seed: 5,
        ..NetworkConfig::default()
    };
    let mut gl = GossipLearning::new(data, cfg, net, || mlp(8, &[16], 4, &mut seeded(1)));

    println!("\nphase 1: healthy network (40 activations)");
    gl.run(40);
    gl.network_mut().run_to_quiescence();
    let (_, acc) = gl.evaluate_peer(0);
    println!(
        "  peer 0 consensus accuracy {acc:.3}; replicas consistent: {}",
        gl.network().replicas_consistent()
    );

    println!("\nphase 2: network partitions into two halves (40 activations)");
    let groups: Vec<usize> = (0..users).map(|i| usize::from(i >= users / 2)).collect();
    gl.network_mut().partition(groups);
    gl.run(40);
    gl.network_mut().run_to_quiescence();
    let (_, a0) = gl.evaluate_peer(0);
    let (_, a1) = gl.evaluate_peer(users - 1);
    println!(
        "  side A sees {} txs (acc {a0:.3}), side B sees {} txs (acc {a1:.3}), consistent: {}",
        gl.network().peer(0).len(),
        gl.network().peer(users - 1).len(),
        gl.network().replicas_consistent()
    );

    println!("\nphase 3: heal + pull-based repair");
    gl.network_mut().heal();
    gl.network_mut().repair_to_quiescence(64);
    let (_, merged) = gl.evaluate_peer(0);
    println!(
        "  merged ledger: {} txs on every peer, consistent: {}, consensus accuracy {merged:.3}",
        gl.network().peer(0).len(),
        gl.network().replicas_consistent()
    );

    let s = gl.network().stats;
    println!(
        "\nnetwork totals: {} delivered, {} dropped (loss/partition), {} duplicates, {} orphaned",
        s.delivered, s.dropped, s.duplicates, s.orphaned
    );
    println!(
        "learning totals: {} published, {} rejected by the local gate",
        gl.published(),
        gl.discarded()
    );
}
