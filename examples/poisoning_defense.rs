//! Poisoning defense demo (paper §III-E / Fig. 5).
//!
//! A quarter of the population turns malicious halfway through training and
//! floods the network with random-noise models. We run the same attack
//! against the *basic* Algorithm 2 and against the §III-E defended variant
//! (sample many candidate tips, validate each locally, approve the best).
//!
//! ```text
//! cargo run --release --example poisoning_defense
//! ```

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::{
    assign_malicious, AttackKind, SimConfig, Simulation, TangleHyperParams,
};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;

const PRETRAIN: u64 = 20;
const ATTACK: u64 = 20;
const POISON_FRACTION: f64 = 0.25;

fn run(label: &str, defended: bool) {
    let data = blobs::generate(
        &BlobsConfig {
            users: 30,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        11,
    );
    let nodes = 10;
    let hyper = TangleHyperParams {
        num_tips: 2,
        sample_size: if defended { nodes } else { 2 },
        tip_validation: defended,
        window: None,
        reference_avg: 5,
        confidence_samples: nodes,
        alpha: 0.5,
        confidence_mode: tangle_learning::learning::ConfidenceMode::WalkHit,
        accuracy_bias: 0.0,
        parallel_walks: true,
    };
    let cfg = SimConfig {
        nodes_per_round: nodes,
        lr: 0.15,
        eval_fraction: 0.5,
        seed: 3,
        hyper,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(data, cfg, || mlp(8, &[16], 4, &mut seeded(1)));
    assign_malicious(
        sim.nodes_mut(),
        POISON_FRACTION,
        PRETRAIN + 1,
        AttackKind::RandomNoise,
        99,
        |_| None,
    );
    println!("\n--- {label} ---");
    for r in 1..=(PRETRAIN + ATTACK) {
        let stats = sim.round();
        if r % 4 == 0 {
            let ev = sim.evaluate(r);
            let marker = if r > PRETRAIN {
                "  << under attack"
            } else {
                ""
            };
            println!(
                "round {r:>3}  acc {:.3}  poisoned-consensus {:>3.0}%  malicious-published {}{}",
                ev.accuracy,
                ev.reference_poisoned_fraction * 100.0,
                stats.malicious_published,
                marker
            );
        }
    }
}

fn main() {
    println!(
        "{}% of nodes flood the tangle with random models from round {}",
        (POISON_FRACTION * 100.0) as u32,
        PRETRAIN + 1
    );
    run("basic Algorithm 2 (no defense)", false);
    run("§III-E defense: sample + validate candidate tips", true);
}
