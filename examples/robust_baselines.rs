//! Tangle defense vs centralized BFT aggregation under the same attack.
//!
//! The paper's related work (§II-A) contrasts its ledger-level defense with
//! server-side byzantine-tolerant aggregation (Krum and friends). Here the
//! same population — 25% of it flooding random-noise updates — trains under
//! four regimes: plain FedAvg, FedAvg + Multi-Krum, FedAvg + coordinate
//! median, and the defended learning tangle.
//!
//! ```text
//! cargo run --release --example robust_baselines
//! ```

use tangle_learning::baseline::{Aggregator, FedAvg, FedAvgConfig};
use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::{
    assign_malicious, AttackKind, SimConfig, Simulation, TangleHyperParams,
};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;

const PRETRAIN: u64 = 15;
const ATTACK: u64 = 30;
const POISON_FRACTION: f64 = 0.25;
const NODES: usize = 8;

fn dataset() -> tangle_learning::data::FederatedDataset {
    blobs::generate(
        &BlobsConfig {
            users: 24,
            samples_per_user: (24, 36),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        17,
    )
}

fn build() -> tangle_learning::nn::Sequential {
    mlp(8, &[16], 4, &mut seeded(1))
}

fn run_fedavg(label: &str, aggregator: Aggregator) -> f32 {
    let data = dataset();
    let n_poison = (data.num_clients() as f64 * POISON_FRACTION) as usize;
    let mut fa = FedAvg::new(
        &data,
        FedAvgConfig {
            nodes_per_round: NODES,
            lr: 0.15,
            seed: 3,
            aggregator,
            ..FedAvgConfig::default()
        },
        build,
    );
    for _ in 0..PRETRAIN {
        fa.round();
    }
    fa.set_random_poisoners(0..n_poison);
    for _ in 0..ATTACK {
        fa.round();
    }
    let (_, acc) = fa.evaluate(1.0, 0);
    println!("{label:<26} final accuracy {acc:.3}");
    acc
}

fn run_tangle() -> f32 {
    let data = dataset();
    let cfg = SimConfig {
        nodes_per_round: NODES,
        lr: 0.15,
        eval_fraction: 1.0,
        seed: 3,
        hyper: TangleHyperParams {
            alpha: 0.5,
            reference_avg: 5,
            ..TangleHyperParams::robust(NODES)
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(data, cfg, build);
    assign_malicious(
        sim.nodes_mut(),
        POISON_FRACTION,
        PRETRAIN + 1,
        AttackKind::RandomNoise,
        9,
        |_| None,
    );
    for _ in 0..(PRETRAIN + ATTACK) {
        sim.round();
    }
    let acc = sim.evaluate(0).accuracy;
    println!("{:<26} final accuracy {acc:.3}", "learning tangle (§III-E)");
    acc
}

fn main() {
    println!(
        "{}% of clients turn malicious after {PRETRAIN} benign rounds and submit \
         random noise for the remaining {ATTACK} rounds:\n",
        (POISON_FRACTION * 100.0) as u32
    );
    let mean = run_fedavg("fedavg (mean)", Aggregator::Mean);
    let krum = run_fedavg("fedavg + multi-krum", Aggregator::MultiKrum { f: 2, m: 4 });
    let median = run_fedavg("fedavg + median", Aggregator::Median);
    let tangle = run_tangle();
    println!();
    if tangle > mean && krum > mean && median > mean {
        println!(
            "both the ledger-level defense ({tangle:.2}) and server-side BFT aggregation \
             ({krum:.2} / {median:.2}) survive an attack that breaks the plain mean ({mean:.2}) \
             — but only the tangle needs no trusted server."
        );
    }
}
