//! A small decentralized handwriting-recognition network (the paper's
//! FEMNIST scenario, shrunk to run in seconds).
//!
//! Forty "writers" each hold glyph images in their personal handwriting
//! style; a CNN is trained collaboratively over the tangle. The example
//! prints convergence, the Fig. 2 ledger structure, and exports the tangle
//! as Graphviz DOT.
//!
//! ```text
//! cargo run --release --example handwriting_network
//! ```

use tangle_learning::data::femnist::{self, FemnistConfig};
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::ledger::analysis::{ConsensusView, TxClass};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::{femnist_cnn, CnnConfig};

fn main() {
    let cfg = FemnistConfig {
        classes: 6,
        img: 12,
        users: 40,
        samples_per_user: (12, 30),
        ..FemnistConfig::scaled()
    };
    let data = femnist::generate(&cfg, 2024);
    println!("dataset: {}", data.summary());
    let img = cfg.img;
    let classes = cfg.classes;
    let build = move || {
        femnist_cnn(
            img,
            classes,
            CnnConfig {
                conv1: 4,
                conv2: 8,
                dense: 24,
            },
            &mut seeded(9),
        )
    };
    let sim_cfg = SimConfig {
        nodes_per_round: 10,
        lr: 0.08,
        eval_fraction: 0.25,
        seed: 5,
        hyper: TangleHyperParams {
            confidence_samples: 10,
            reference_avg: 5,
            ..TangleHyperParams::optimized()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(data, sim_cfg, build);
    for r in 1..=30u64 {
        sim.round();
        if r % 5 == 0 {
            let ev = sim.evaluate(r);
            println!(
                "round {r:>3}  consensus accuracy {:.3}  loss {:.3}",
                ev.accuracy, ev.loss
            );
        }
    }

    let view = ConsensusView::compute(sim.tangle());
    let count = |c: TxClass| view.classes.iter().filter(|x| **x == c).count();
    println!(
        "\nledger: {} transactions — {} confirmed, {} tips, {} pending",
        sim.tangle().len(),
        count(TxClass::Confirmed),
        count(TxClass::Tip),
        count(TxClass::Pending)
    );
    let dot = tangle_learning::ledger::dot::to_dot(sim.tangle());
    std::fs::write("handwriting_tangle.dot", dot).expect("write dot file");
    println!("wrote handwriting_tangle.dot (render with `dot -Tpng`)");
}
