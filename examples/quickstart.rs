//! Quickstart: decentralized learning on a tangle vs centralized FedAvg.
//!
//! Twenty clients hold non-IID slices of an easy classification task. We
//! train the same MLP two ways — through a FedAvg server and through a
//! learning tangle — and watch both converge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tangle_learning::baseline::{FedAvg, FedAvgConfig};
use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;

fn main() {
    let data = blobs::generate(
        &BlobsConfig {
            users: 20,
            samples_per_user: (24, 40),
            noise_std: 0.7,
            ..BlobsConfig::default()
        },
        42,
    );
    println!("dataset: {}", data.summary());
    let build = || mlp(8, &[16], 4, &mut seeded(1));

    // --- Centralized baseline -------------------------------------------
    let mut fedavg = FedAvg::new(
        &data,
        FedAvgConfig {
            nodes_per_round: 5,
            lr: 0.15,
            seed: 7,
            ..FedAvgConfig::default()
        },
        build,
    );

    // --- Learning tangle -------------------------------------------------
    let cfg = SimConfig {
        nodes_per_round: 5,
        lr: 0.15,
        eval_fraction: 0.5,
        seed: 7,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };
    let mut tangle = Simulation::new(data.clone(), cfg, build);

    println!(
        "\n{:>6} {:>10} {:>10} {:>8}",
        "round", "fedavg", "tangle", "tips"
    );
    for r in 1..=30u64 {
        fedavg.round();
        let stats = tangle.round();
        if r % 5 == 0 {
            let (_, fa) = fedavg.evaluate(0.5, r);
            let tg = tangle.evaluate(r).accuracy;
            println!("{r:>6} {fa:>10.3} {tg:>10.3} {:>8}", stats.tips);
        }
    }
    println!(
        "\ntangle holds {} transactions; consensus model has {} parameters",
        tangle.tangle().len(),
        tangle.consensus_params().len()
    );
}
