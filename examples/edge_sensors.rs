//! Decentralized activity recognition on edge devices — the paper's IoT
//! motivation, end to end: fifty devices with individually calibrated
//! sensors jointly train an activity classifier over the tangle without
//! any data (or any server) leaving the edge.
//!
//! The consensus model is analysed with a confusion matrix and per-class
//! F1, so you can see exactly what the federation learned.
//!
//! ```text
//! cargo run --release --example edge_sensors
//! ```

use tangle_learning::data::sensors::{self, SensorsConfig};
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;
use tangle_learning::nn::{ConfusionMatrix, ParamVec};

const ACTIVITIES: [&str; 5] = ["sit", "walk", "jog", "cycle", "stairs"];

fn main() {
    let cfg = SensorsConfig::default(); // 5 activities, 50 devices, 32-sample windows
    let data = sensors::generate(&cfg, 99);
    println!("dataset: {}", data.summary());
    let window = cfg.window;
    let classes = cfg.classes;
    let build = move || mlp(window, &[32, 16], classes, &mut seeded(2));

    let sim_cfg = SimConfig {
        nodes_per_round: 10,
        lr: 0.1,
        eval_fraction: 0.3,
        seed: 4,
        hyper: TangleHyperParams {
            confidence_samples: 10,
            reference_avg: 5,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };
    let eval_clients: Vec<tangle_learning::data::ClientData> = data.clients.clone();
    let mut sim = Simulation::new(data, sim_cfg, build);
    for r in 1..=40u64 {
        sim.round();
        if r % 10 == 0 {
            let ev = sim.evaluate(r);
            println!("round {r:>3}  consensus accuracy {:.3}", ev.accuracy);
        }
    }

    // Confusion analysis of the final consensus model over all devices.
    let consensus: ParamVec = sim.consensus_params();
    let mut model = build();
    consensus.assign_to(&mut model);
    let mut cm = ConfusionMatrix::new(classes);
    for c in &eval_clients {
        if c.test_len() > 0 {
            cm.merge(&ConfusionMatrix::from_logits(
                &model.predict(&c.test_x),
                &c.test_y,
                classes,
            ));
        }
    }
    println!("\nconfusion matrix over all devices' held-out windows:");
    print!("{cm}");
    println!("\nper-activity F1:");
    for (i, name) in ACTIVITIES.iter().enumerate() {
        println!("  {name:<8} {:.3}", cm.f1(i as u32));
    }
    println!(
        "\noverall accuracy {:.3}, macro-F1 {:.3}",
        cm.accuracy(),
        cm.macro_f1()
    );
}
