//! Sub-tangle formation for clustered populations (paper §VI outlook).
//!
//! Two halves of the population hold *disjoint* tasks: cluster A only ever
//! sees classes 0/1, cluster B only 2/3. With the plain weighted walk every
//! node approves whatever the consensus favors; with the accuracy-biased
//! walk ("evaluate the model on local data during the tip selection
//! algorithm") nodes drift toward tips that work on *their* data — and the
//! ledger splits into sub-tangles. We measure that with approval-edge
//! homophily.
//!
//! ```text
//! cargo run --release --example clustered_subtangles
//! ```

use tangle_learning::data::blobs::{self, BlobsConfig};
use tangle_learning::data::ClientData;
use tangle_learning::learning::cluster::edge_homophily;
use tangle_learning::learning::{SimConfig, Simulation, TangleHyperParams};
use tangle_learning::nn::rng::seeded;
use tangle_learning::nn::zoo::mlp;
use tangle_learning::nn::Tensor;

/// Keep only the samples of `keep` classes in a client's data.
fn restrict(client: &ClientData, keep: &[u32]) -> ClientData {
    let filter = |x: &Tensor, y: &[u32]| {
        let stride: usize = x.shape()[1..].iter().product();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, &label) in y.iter().enumerate() {
            if keep.contains(&label) {
                xs.extend_from_slice(&x.as_slice()[i * stride..(i + 1) * stride]);
                ys.push(label);
            }
        }
        let mut shape = x.shape().to_vec();
        shape[0] = ys.len();
        (Tensor::from_vec(shape, xs), ys)
    };
    let (train_x, train_y) = filter(&client.train_x, &client.train_y);
    let (test_x, test_y) = filter(&client.test_x, &client.test_y);
    ClientData {
        train_x,
        train_y,
        test_x,
        test_y,
    }
}

fn run(bias: f64) -> f32 {
    let users = 16;
    let mut data = blobs::generate(
        &BlobsConfig {
            users,
            samples_per_user: (30, 40),
            noise_std: 0.6,
            label_skew_alpha: None,
            ..BlobsConfig::default()
        },
        5,
    );
    // Split the population into two disjoint-task clusters.
    for (i, c) in data.clients.iter_mut().enumerate() {
        *c = restrict(c, if i < users / 2 { &[0, 1] } else { &[2, 3] });
    }
    let cfg = SimConfig {
        nodes_per_round: 8,
        lr: 0.15,
        eval_fraction: 0.5,
        seed: 7,
        hyper: TangleHyperParams {
            confidence_samples: 8,
            reference_avg: 3,
            accuracy_bias: bias,
            alpha: 1.0,
            ..TangleHyperParams::basic()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(data, cfg, || mlp(8, &[16], 4, &mut seeded(1)));
    for _ in 0..25 {
        sim.round();
    }
    let clusters: Vec<usize> = (0..users).map(|i| usize::from(i >= users / 2)).collect();
    let h = edge_homophily(sim.tangle(), &clusters);
    println!(
        "  bias {bias:>5.1}: homophily {:.3} (random mixing would give {:.3}, lift {:+.3}, {} edges)",
        h.observed,
        h.expected,
        h.lift(),
        h.edges
    );
    h.lift()
}

fn main() {
    println!("approval-edge homophily of a two-cluster population:");
    let plain = run(0.0);
    let biased = run(50.0);
    if biased > plain {
        println!(
            "\nthe accuracy-biased walk increased cluster homophily by {:+.3} — sub-tangles form",
            biased - plain
        );
    } else {
        println!("\nno homophily increase at this scale (try more rounds or stronger bias)");
    }
}
